package core

import (
	"context"

	"repro/internal/pqueue"
)

// pruneEps guards every θlb pruning comparison against float64 noise: a set
// is pruned only when its upper bound is below θlb−pruneEps. Bounds and θlb
// can be sums of the same similarities accumulated in different orders, so
// exact ties may differ by a few ulps; without the slack a tie set could be
// wrongly eliminated (see matching.BoundEps for the same guard inside the
// Hungarian solver).
const pruneEps = 1e-9

// ctxCheckEvery is the refinement loop's cancellation poll cadence in
// stream tuples (a power of two; the check is one atomic-ish ctx.Err call).
const ctxCheckEvery = 1024

// candState is the per-candidate refinement state: the incremental greedy
// lower bound (iLB, Lemma 5) and the corrected incremental upper bound
// (DESIGN.md §2). States live in one dense slice per partition, indexed by
// the candidate's partition-local position; the greedy matching masks
// (query elements and candidate-local token positions) live in a shared bit
// arena, so a whole partition's refinement state costs two allocations.
type candState struct {
	// ubSum is the sum of the first-seen (= maximum) similarities of the
	// candidate's distinct streamed tokens, capped at min(|Q|,|C|) terms.
	ubSum float64
	// lbScore is the partial greedy matching score plus the vanilla overlap
	// (identity tuples stream first, so exact matches enter the greedy
	// matching before anything else).
	lbScore float64
	// mRem is the number of matching slots not yet covered by ubSum terms;
	// iUB(C) = ubSum + mRem·s.
	mRem int32
	// tokRem is the number of the candidate's distinct tokens whose global
	// first arrival has not streamed yet. It sharpens the candidate's
	// remaining-gain bound to min(mRem, tokRem)·s — once a candidate's
	// whole token neighborhood has streamed, its upper bound is already
	// final regardless of the stream level. Only the lazy cut-off reads it
	// (the eager filters keep the paper's iUB semantics).
	tokRem int32
	// seen marks the state as initialized (the set has appeared in at least
	// one posting list).
	seen bool
	// pruned marks the candidate as eliminated; later tuples skip it.
	pruned bool
}

// survivor is a candidate that reached post-processing with its final
// refinement bounds.
type survivor struct {
	setID  int
	lb, ub float64
}

// partRefiner runs Algorithm 1 over one partition's CSR inverted index,
// consuming the token stream in one or more consecutive slices of the
// shared tuple arena. Eager searches feed it the fully materialized stream
// in a single consume call; the lazy pump feeds it block by block and reads
// alive between blocks to evaluate the cut-off condition. Everything —
// candidate creation, bound accumulation, bucket-prune cadence — depends
// only on the global tuple index, so the two feeding disciplines produce
// bit-identical state for the same consumed prefix.
type partRefiner struct {
	e     *Engine
	p     int
	qN    int
	theta *atomicMax
	stats *Stats
	dead  []uint64

	states         []candState
	bits           []uint64
	qBits, cBits   []uint64
	qWords         int
	buckets        *iubBuckets
	llb            *pqueue.TopK
	lastPruneTheta float64
	// alive is the number of seen, unpruned candidates — the pool size the
	// lazy cut-off condition watches. Only valid between consume calls (the
	// pump reads it at block barriers).
	alive int
	// cardPtr walks the partition's descending-cardinality order past sets
	// that have streamed (or are tombstoned), so maxUnseenCard is the
	// cardinality bound for sets the stream has not touched yet.
	cardPtr int
}

// newPartRefiner prepares partition p's refinement state.
func (e *Engine) newPartRefiner(qN, p int, theta *atomicMax, stats *Stats, dead []uint64) *partRefiner {
	part := e.parts[p]
	cOff := e.cOffs[p]
	qWords := (qN + 63) / 64
	r := &partRefiner{
		e: e, p: p, qN: qN, theta: theta, stats: stats, dead: dead,
		states: make([]candState, len(part)),
		qWords: qWords,
	}
	// One bit arena for both greedy matching masks: candidate L's query mask
	// occupies words [L·qWords, (L+1)·qWords) of qBits and its token mask
	// words [cOff[L], cOff[L+1]) of cBits.
	r.bits = make([]uint64, len(part)*qWords+int(cOff[len(part)]))
	r.qBits = r.bits[:len(part)*qWords]
	r.cBits = r.bits[len(part)*qWords:]
	maxM := qN
	if mc := int(e.maxCard[p]); mc < maxM {
		maxM = mc
	}
	r.buckets = newIUBBuckets(maxM, len(part))
	r.llb = pqueue.NewTopK(e.opts.K)
	return r
}

// consume processes tuples, whose first element sits at global stream
// position base. It returns false when ctx was canceled mid-slice (the
// refiner's state is then partial and must be discarded).
func (r *partRefiner) consume(ctx context.Context, tuples []streamTuple, base int) bool {
	e, opts := r.e, r.e.opts
	inv := e.invs[r.p]
	cOff := e.cOffs[r.p]
	states, qBits, cBits, qWords := r.states, r.qBits, r.cBits, r.qWords
	buckets, llb, theta, stats, dead := r.buckets, r.llb, r.theta, r.stats, r.dead
	qN := r.qN

	markPruned := func(local int32) {
		states[local].pruned = true
		stats.IUBPruned++
		r.alive--
	}

	for i := range tuples {
		ti := base + i
		if ti&(ctxCheckEvery-1) == ctxCheckEvery-1 && ctx.Err() != nil {
			return false
		}
		tup := &tuples[i]
		s := tup.sim
		sids, poss := inv.Postings(tup.tokenID)
		for pi, sid := range sids {
			local := e.localOf[sid]
			st := &states[local]
			if !st.seen {
				st.seen = true
				// Tombstone-aware candidate creation: a deleted set is
				// discarded before it counts as a candidate or touches any
				// top-k structure.
				if dead != nil && dead[sid>>6]&(1<<(uint(sid)&63)) != 0 {
					st.pruned = true
					continue
				}
				stats.Candidates++
				slots := int32(qN)
				if c := e.card[sid]; c < slots {
					slots = c
				}
				st.mRem = slots
				st.tokRem = e.card[sid]
				// UB-Filter at first sight (Lemma 2): the first tuple for a
				// set carries its maximum element similarity, so
				// UB(C) = min(|Q|,|C|)·s.
				if !opts.DisableIUB {
					if t := theta.Load(); t > 0 && float64(slots)*s < t-pruneEps {
						st.pruned = true
						stats.IUBPruned++
						continue
					}
					buckets.insert(local, int(slots), 0)
				}
				r.alive++
			}
			if st.pruned {
				continue
			}
			// Incremental upper bound: count the token's maximum similarity
			// once, while slots remain (the stream is descending, so the
			// first min(|Q|,|C|) distinct tokens carry the largest sums).
			if tup.first {
				st.tokRem--
				if st.mRem > 0 {
					st.ubSum += s
					st.mRem--
					if !opts.DisableIUB {
						buckets.move(local, int(st.mRem), st.ubSum)
					}
				}
			}
			// Incremental greedy lower bound (iLB): take the edge iff both
			// endpoints are unmatched (Lemma 5).
			qw := int(local)*qWords + int(tup.qIdx)>>6
			qbit := uint64(1) << (uint(tup.qIdx) & 63)
			if qBits[qw]&qbit == 0 {
				cw := int(cOff[local]) + int(poss[pi])>>6
				cbit := uint64(1) << (uint(poss[pi]) & 63)
				if cBits[cw]&cbit == 0 {
					qBits[qw] |= qbit
					cBits[cw] |= cbit
					st.lbScore += s
					if llb.Update(int(sid), st.lbScore) {
						theta.Update(llb.Bottom())
					}
				}
			}
		}
		if !opts.DisableIUB {
			// Bucket prune: eager when θlb improved, periodic otherwise
			// (pruning is an optimization — correctness never depends on
			// when it runs, and the final drain re-checks every survivor).
			t := theta.Load()
			if t > r.lastPruneTheta || ti%opts.PruneEvery == opts.PruneEvery-1 {
				r.lastPruneTheta = t
				buckets.prune(s, t-pruneEps, markPruned)
			}
		}
	}
	return true
}

// drain emits the survivors after the stream is exhausted: every unseen
// element contributes nothing (its similarities are all below α), so the
// final upper bound tightens to ubSum and is re-checked against the final
// θlb.
func (r *partRefiner) drain() []survivor {
	finalTheta := r.theta.Load()
	part := r.e.parts[r.p]
	var out []survivor
	for local := range r.states {
		st := &r.states[local]
		if !st.seen || st.pruned {
			continue
		}
		if !r.e.opts.DisableIUB && finalTheta > 0 && st.ubSum < finalTheta-pruneEps {
			r.stats.IUBPruned++
			continue
		}
		out = append(out, survivor{setID: part[local], lb: st.lbScore, ub: st.ubSum})
	}
	r.accountMem()
	return out
}

// replayPool is phase one of a cut-off search's survivor reconstruction:
// every alive candidate's refinement bounds are replayed to their
// full-stream values (replayBounds) and the full lower bounds are offered
// to the partition's Llb exactly as the eager tail would have — after every
// partition has done this, the global θlb holds its eager final value
// (DESIGN.md §10 spells out why frozen and tail candidates cannot move it).
// filterPool then applies the eager drain check under that final θlb.
//
// Candidates whose sharpened remaining-gain bound ubSum+min(mRem,tokRem)·level
// already falls below the cut-time θlb are certified eager-pruned without a
// replay: their full upper bound cannot reach the final θlb either, and
// their full lower bound sits below it, so skipping their Llb offer cannot
// move the reconstructed θlb (same frozen-offer argument).
func (r *partRefiner) replayPool(edgesOf func(int32) []qEdge, qids []int32, qN int, level, thetaCut float64, at cutPoint) []survivor {
	part := r.e.parts[r.p]
	var out []survivor
	var rs replayScratch
	for local := range r.states {
		st := &r.states[local]
		if !st.seen || st.pruned {
			continue
		}
		if rem := min(st.mRem, st.tokRem); thetaCut > 0 && st.ubSum+float64(rem)*level < thetaCut-pruneEps {
			r.stats.IUBPruned++
			continue
		}
		sid := part[local]
		lb, ub := r.tailBounds(int32(local), qN, edgesOf, qids, at, &rs)
		out = append(out, survivor{setID: sid, lb: lb, ub: ub})
		if r.llb.Update(sid, lb) {
			r.theta.Update(r.llb.Bottom())
		}
	}
	r.accountMem()
	return out
}

// filterPool applies the eager drain's final upper-bound check to the
// replayed pool: candidates whose full-stream ubSum falls below the final
// θlb are exactly the ones the eager tail would have pruned (mid-stream or
// at drain — the timing cannot matter, only the final values do).
func (r *partRefiner) filterPool(pool []survivor, finalTheta float64) []survivor {
	out := pool[:0]
	for _, sv := range pool {
		if finalTheta > 0 && sv.ub < finalTheta-pruneEps {
			r.stats.IUBPruned++
			continue
		}
		out = append(out, sv)
	}
	return out
}

// maxUnseenCard returns the largest cardinality among the partition's sets
// the stream has not yet touched — the sharp version of the Lemma 2 bound
// the cut-off condition uses: a set already seen is either a pool member or
// pruned, so only unseen cardinalities can still spawn candidates. The
// pointer only advances (seen is permanent), costing amortized O(|part|)
// per query. Tombstoned sets are skipped: they can never become candidates.
func (r *partRefiner) maxUnseenCard() int32 {
	e, part, order := r.e, r.e.parts[r.p], r.e.cardOrder[r.p]
	for r.cardPtr < len(order) {
		local := order[r.cardPtr]
		if !r.states[local].seen {
			sid := part[local]
			if r.dead == nil || r.dead[sid>>6]&(1<<(uint(sid)&63)) == 0 {
				return e.card[sid]
			}
		}
		r.cardPtr++
	}
	return 0
}

func (r *partRefiner) accountMem() {
	r.stats.MemCandBytes += int64(len(r.states))*24 + int64(len(r.bits))*8
}

// refinePartition runs Algorithm 1 over partition p's CSR inverted index
// against a fully materialized tuple slice — the eager path. All partitions
// consume the same tuples and share the global θlb through theta — across
// segments too, when the engine is one segment of a Group.
//
// dead is the segment's optional tombstone bitset, indexed by the engine's
// repository-local set IDs: a tombstoned set is discarded at first sight,
// before it is counted as a candidate or contributes any bound. The loop
// polls ctx every ctxCheckEvery tuples and returns early (with partial,
// discarded state) once the search is canceled.
//
// The per-tuple/per-posting inner loop is free of map lookups and string
// comparisons: postings are flat int32 arenas, candidate state is a dense
// slice addressed through localOf, matched query elements are one bit per
// element in the qBits arena, and matched candidate tokens are one bit per
// candidate-local element position (carried by the posting entry) in the
// cBits arena.
func (e *Engine) refinePartition(ctx context.Context, qN int, tuples []streamTuple, p int, theta *atomicMax, stats *Stats, dead []uint64) []survivor {
	r := e.newPartRefiner(qN, p, theta, stats, dead)
	if !r.consume(ctx, tuples, 0) {
		return nil
	}
	return r.drain()
}
