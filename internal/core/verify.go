package core

import (
	"sort"

	"repro/internal/matching"
	"repro/internal/sets"
)

// verify computes the exact semantic overlap of the query and candidate c by
// maximum-weight bipartite matching over the cached α-edges. When theta is
// non-nil and early termination is enabled, the Hungarian solver aborts as
// soon as its label sum — an upper bound on the final score — drops below
// the current global θlb (Lemma 8), certifying that c cannot reach the
// top-k.
//
// The matrix is restricted to query elements and candidate tokens that have
// at least one α-edge; all other elements can only contribute zero-weight
// pairs, which the optional matching never needs. This keeps the O(n³)
// matching at the size of the connected subgraph rather than the full sets.
func (e *Engine) verify(query []string, cache map[string][]qEdge, c sets.Set, theta *atomicMax) matching.Result {
	rowOf := make(map[int32]int)
	var rows []int32
	type colEdges struct {
		token string
		edges []qEdge
	}
	var cols []colEdges
	for _, tok := range c.Elements {
		edges := cache[tok]
		if len(edges) == 0 {
			continue
		}
		cols = append(cols, colEdges{token: tok, edges: edges})
		for _, ed := range edges {
			if _, ok := rowOf[ed.qIdx]; !ok {
				rowOf[ed.qIdx] = 0 // position assigned after sorting
				rows = append(rows, ed.qIdx)
			}
		}
	}
	if len(cols) == 0 {
		return matching.Result{}
	}
	// Deterministic row order regardless of element order.
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for i, q := range rows {
		rowOf[q] = i
	}
	if e.opts.Verifier == VerifierSSP {
		adj := make([][]matching.SparseEdge, len(rows))
		for j, ce := range cols {
			for _, ed := range ce.edges {
				r := rowOf[ed.qIdx]
				adj[r] = append(adj[r], matching.SparseEdge{Col: j, W: ed.sim})
			}
		}
		return matching.SparseMatch(adj, len(cols))
	}
	w := make([][]float64, len(rows))
	for i := range w {
		w[i] = make([]float64, len(cols))
	}
	for j, ce := range cols {
		for _, ed := range ce.edges {
			w[rowOf[ed.qIdx]][j] = ed.sim
		}
	}
	var bound func() float64
	if theta != nil && !e.opts.DisableEarlyTerm {
		bound = theta.Load
	}
	return matching.HungarianBounded(w, bound)
}
