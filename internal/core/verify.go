package core

import (
	"repro/internal/matching"
	"repro/internal/sets"
)

// verify computes the exact semantic overlap of the query and candidate c by
// maximum-weight bipartite matching over the cached α-edges. When theta is
// non-nil and early termination is enabled, the Hungarian solver aborts as
// soon as its label sum — an upper bound on the final score — drops below
// the current global θlb (Lemma 8), certifying that c cannot reach the
// top-k.
//
// The matrix is restricted to query elements and candidate tokens that have
// at least one α-edge; all other elements can only contribute zero-weight
// pairs, which the optional matching never needs. This keeps the O(n³)
// matching at the size of the connected subgraph rather than the full sets.
// Edges are fetched by interned token ID straight from the ID-indexed cache
// (c.ElemIDs is always in-vocabulary: repository sets define the
// vocabulary), and rows are numbered in ascending query-element order via a
// dense qN-sized table — no maps, no sorting.
func (e *Engine) verify(qN int, cache *edgeCache, c sets.Set, theta *atomicMax) matching.Result {
	cols := make([][]qEdge, 0, len(c.ElemIDs))
	rowOf := make([]int32, qN) // qIdx -> row+1; 0 = absent
	rows := 0
	for _, tid := range c.ElemIDs {
		edges := cache.edges(tid)
		if len(edges) == 0 {
			continue
		}
		cols = append(cols, edges)
		for _, ed := range edges {
			if rowOf[ed.qIdx] == 0 {
				rowOf[ed.qIdx] = 1
				rows++
			}
		}
	}
	if len(cols) == 0 {
		return matching.Result{}
	}
	// Deterministic row order: ascending query element index.
	r := int32(0)
	for qi := range rowOf {
		if rowOf[qi] != 0 {
			r++
			rowOf[qi] = r
		}
	}
	if e.opts.Verifier == VerifierSSP {
		adj := make([][]matching.SparseEdge, rows)
		for j, edges := range cols {
			for _, ed := range edges {
				r := rowOf[ed.qIdx] - 1
				adj[r] = append(adj[r], matching.SparseEdge{Col: j, W: ed.sim})
			}
		}
		return matching.SparseMatch(adj, len(cols))
	}
	var bound func() float64
	if theta != nil && !e.opts.DisableEarlyTerm {
		bound = theta.Load
	}
	// Verification sandwich (DESIGN.md §12): row/column maxima, read straight
	// off the edge lists, bracket the Hungarian optimum from above. Σ rowMax
	// is bit-identical to the solver's initial label sum, so the UB prune is
	// a superset of its entry check; a tight row-perfect matching replays the
	// solver's exact result. Both pre-solvers are conclusive-or-silent —
	// results are byte-identical with the sandwich disabled.
	var rowMax, colMax []float64
	if !e.opts.DisableSandwich {
		rowMax = make([]float64, rows)
		colMax = make([]float64, len(cols))
		colRows := make([][]int32, len(cols))
		nEdges := 0
		for _, edges := range cols {
			nEdges += len(edges)
		}
		flatAdj := make([]int32, 0, nEdges)
		for j, edges := range cols {
			base := len(flatAdj)
			for _, ed := range edges {
				r := rowOf[ed.qIdx] - 1
				flatAdj = append(flatAdj, r)
				if ed.sim > rowMax[r] {
					rowMax[r] = ed.sim
				}
				if ed.sim > colMax[j] {
					colMax[j] = ed.sim
				}
			}
			colRows[j] = flatAdj[base:]
		}
		if matching.SandwichPrune(rowMax, colMax, colRows, bound) {
			return matching.Result{Pruned: true, Skipped: true}
		}
	}
	// One flat backing array for the similarity matrix: rows+1 allocations
	// become two.
	flat := make([]float64, rows*len(cols))
	w := make([][]float64, rows)
	for i := range w {
		w[i] = flat[i*len(cols) : (i+1)*len(cols)]
	}
	for j, edges := range cols {
		for _, ed := range edges {
			w[rowOf[ed.qIdx]-1][j] = ed.sim
		}
	}
	if !e.opts.DisableSandwich {
		if res, ok := matching.TightMatch(w, rowMax); ok {
			return res
		}
	}
	return matching.HungarianBounded(w, bound)
}
