package core

import (
	"context"
	"math"
	"slices"
	"strings"
	"sync"

	"repro/internal/index"
	"repro/internal/sets"
)

// This file implements the lazy token stream of DESIGN.md §10: the pump
// that feeds the partition refiners block by block, the θlb-driven cut-off
// condition, and the two pieces that keep a truncated search byte-identical
// to the eager pipeline — on-demand edge completion and the full-stream
// bound replay for the surviving candidate pool.

// edgeCompleter recomputes a token's complete α-edge list through the
// source's pure pair similarity (index.CompleteScorer). A cut-off search
// consults it for every token the post-processing phase touches: survivor
// tokens may be missing edges with similarity in [α, s_cut) from the
// truncated CSR cache, and the scorer reproduces each of them bit-for-bit
// (same similarity function, same floats, same α comparison), so exact
// verification scores cannot differ from the eager pipeline's. Lists are
// memoized; safe for concurrent use by the parallel verifiers.
type edgeCompleter struct {
	query  []string
	qids   []int32 // post-demotion interned IDs (-1 = no identity edge)
	skip   []bool  // probe-masked elements contribute no edges at all
	repo   *sets.Repository
	scorer index.CompleteScorer
	alpha  float64

	mu    sync.Mutex
	lists map[int32][]qEdge
}

func newEdgeCompleter(repo *sets.Repository, query []string, qids []int32, skip []bool, scorer index.CompleteScorer, alpha float64) *edgeCompleter {
	return &edgeCompleter{
		query: query, qids: qids, skip: skip,
		repo: repo, scorer: scorer, alpha: alpha,
		lists: make(map[int32][]qEdge),
	}
}

// edges returns the complete α-edge list of a token ID, computing and
// memoizing it on first use. The identity edge (if the token is a query
// element) comes first, the probed edges follow in query order — verify
// consumes edge lists order-insensitively, and the bound replay imposes its
// own stream order. The O(|Q|) scoring runs outside the mutex so parallel
// replayers and verifiers never serialize on it; racing computes of the
// same token are safe (the values are deterministic) and the first stored
// list wins.
func (c *edgeCompleter) edges(tid int32) []qEdge {
	c.mu.Lock()
	l, ok := c.lists[tid]
	c.mu.Unlock()
	if ok {
		return l
	}
	tok := c.repo.Token(tid)
	var out []qEdge
	for i := range c.query {
		if c.qids[i] == tid {
			// The identity tuple of the matching query element (§V): always
			// emitted, similarity 1, no probe involved.
			out = append(out, qEdge{qIdx: int32(i), sim: 1})
		}
	}
	for i, q := range c.query {
		if c.qids[i] == tid || q == tok || (c.skip != nil && c.skip[i]) {
			continue
		}
		if s := c.scorer.PairSim(q, tok); s >= c.alpha {
			out = append(out, qEdge{qIdx: int32(i), sim: s})
		}
	}
	c.mu.Lock()
	if l, ok := c.lists[tid]; ok {
		out = l
	} else {
		c.lists[tid] = out
	}
	c.mu.Unlock()
	return out
}

// replayEv is one candidate edge event, carrying its global-stream-order
// sort key: the identity phase (all identity tuples, in query order)
// precedes every probed tuple, which stream in (similarity desc, token asc,
// query index asc) order — exactly index.Stream's merge order. The key is
// packed into two machine words so the sort never compares token strings:
// k1 is -Inf for identity events (they precede everything) and -sim
// otherwise; k2 breaks ties with the candidate-local token STRING ordinal
// (precomputed once per candidate) and the query element index.
type replayEv struct {
	k1   float64
	k2   uint64
	sim  float64
	qIdx int32
	pos  int32 // candidate-local element position
}

func replayKeyLess(a1 float64, a2 uint64, b1 float64, b2 uint64) int {
	switch {
	case a1 < b1:
		return -1
	case a1 > b1:
		return 1
	case a2 < b2:
		return -1
	case a2 > b2:
		return 1
	default:
		return 0
	}
}

// tokFirst is one distinct candidate token's first stream arrival: its
// maximum similarity to any query element, at the position the merge order
// assigns it (k1/k2 as in replayEv, with k2 = token ordinal alone). mRem
// decrements exactly at these events.
type tokFirst struct {
	k1  float64
	k2  uint64
	sim float64
}

// tokOrder is a candidate token with its string, for the per-candidate
// ordinal assignment.
type tokOrder struct {
	tok string
	at  int32 // index into the candidate's token-entry slice
}

// replayScratch reuses one partition's replay buffers across candidates.
type replayScratch struct {
	events  []replayEv
	firsts  []tokFirst
	order   []tokOrder
	ord     []uint64 // token-entry index -> string ordinal
	qMask   []uint64
	posMask []uint64
}

// cutPoint is the stream-order position of the last tuple refinement
// consumed: every unconsumed tuple is strictly after it in the stream's
// total order (identity phase by query index, then (sim desc, token asc,
// query index asc)). The bound replay uses it to split a candidate's edges
// into the consumed prefix — already folded into the refiner's state — and
// the tail still to be applied.
type cutPoint struct {
	phase1 bool
	sim    float64
	token  string
	qIdx   int32
}

// consumed reports whether the edge (identity?, qIdx, sim, tok) was
// emitted at or before the cut point.
func (at cutPoint) consumed(identity bool, qIdx int32, sim float64, tok string) bool {
	if identity {
		if at.phase1 {
			return qIdx <= at.qIdx
		}
		return true
	}
	if at.phase1 {
		return false
	}
	if sim != at.sim {
		return sim > at.sim
	}
	if tok != at.token {
		return tok < at.token
	}
	return qIdx <= at.qIdx
}

// tailBounds completes one surviving candidate's refinement bounds (iLB
// greedy lower bound and drained ubSum upper bound) to their full-stream
// values: starting from the refiner's cut state — lbScore, ubSum, mRem and
// the candidate's greedy matching masks — it applies exactly the edge
// events the eager tail would have delivered for this candidate, in the
// same order, accumulating the same float additions in the same sequence.
// The values are therefore bit-identical to what the eager pipeline's
// refiner hands to post-processing, and the work is proportional to the
// candidate's TAIL edges, not its full edge lists. edgesOf is either the
// drained CSR cache or the scored on-demand completer; qids are the
// (post-demotion) query element token IDs, which identify identity edges.
//
// Past the cut no tuple can affect any other candidate (DESIGN.md §10), so
// per-candidate continuation is exact.
func (r *partRefiner) tailBounds(local int32, qN int, edgesOf func(int32) []qEdge, qids []int32, at cutPoint, rs *replayScratch) (lb, ub float64) {
	e := r.e
	st := &r.states[local]
	sid := e.parts[r.p][local]
	set := e.repo.Set(sid)
	lb, ub = st.lbScore, st.ubSum
	mRem := st.mRem
	negInf := math.Inf(-1)

	// Pass 1: the candidate's streamed tokens ordered by string, so the
	// tail-event sort compares integers only (stream ties break on the
	// token string; distinct tokens have distinct strings).
	rs.order = rs.order[:0]
	for pos, tid := range set.ElemIDs {
		if len(edgesOf(tid)) == 0 {
			continue // never streamed: contributes to neither bound
		}
		rs.order = append(rs.order, tokOrder{tok: e.repo.Token(tid), at: int32(pos)})
	}
	if len(rs.order) == 0 {
		return lb, ub
	}
	slices.SortFunc(rs.order, func(a, b tokOrder) int { return strings.Compare(a.tok, b.tok) })
	if cap(rs.ord) < len(set.ElemIDs) {
		rs.ord = make([]uint64, len(set.ElemIDs))
	}
	ord := rs.ord[:len(set.ElemIDs)]
	for rank, to := range rs.order {
		ord[to.at] = uint64(rank)
	}

	// Pass 2: tail edge events, and the tokens whose global first arrival
	// is still ahead of the cut (those are where ubSum still grows).
	rs.events = rs.events[:0]
	rs.firsts = rs.firsts[:0]
	for _, to := range rs.order {
		pos := int(to.at)
		tid := set.ElemIDs[pos]
		edges := edgesOf(tid)
		if len(edges) == 0 {
			continue
		}
		tok := to.tok
		identQ := int32(-1)
		maxSim, maxQ := negInf, int32(-1)
		for _, ed := range edges {
			if qids[ed.qIdx] == tid {
				identQ = ed.qIdx
				if !at.consumed(true, ed.qIdx, ed.sim, tok) {
					rs.events = append(rs.events, replayEv{
						k1: negInf, k2: uint64(ed.qIdx), sim: ed.sim, qIdx: ed.qIdx, pos: int32(pos),
					})
				}
				continue
			}
			if ed.sim > maxSim {
				maxSim, maxQ = ed.sim, ed.qIdx
			} else if ed.sim == maxSim && ed.qIdx < maxQ {
				maxQ = ed.qIdx
			}
			if !at.consumed(false, ed.qIdx, ed.sim, tok) {
				rs.events = append(rs.events, replayEv{
					k1: -ed.sim, k2: ord[pos]<<32 | uint64(ed.qIdx), sim: ed.sim, qIdx: ed.qIdx, pos: int32(pos),
				})
			}
		}
		// The token's global first arrival: its identity tuple when it is a
		// query element, else its maximum-similarity edge (lowest query
		// index on ties — the merge order). Only unconsumed first arrivals
		// still contribute to ubSum.
		switch {
		case identQ >= 0:
			if !at.consumed(true, identQ, 1, tok) {
				rs.firsts = append(rs.firsts, tokFirst{k1: negInf, k2: uint64(identQ), sim: 1})
			}
		case maxQ >= 0:
			if !at.consumed(false, maxQ, maxSim, tok) {
				rs.firsts = append(rs.firsts, tokFirst{k1: -maxSim, k2: ord[pos], sim: maxSim})
			}
		}
	}

	// iLB continuation: greedy matching over the tail events in stream
	// order (Lemma 5) on the candidate's existing masks — take an edge iff
	// both endpoints are unmatched.
	slices.SortFunc(rs.events, func(a, b replayEv) int { return replayKeyLess(a.k1, a.k2, b.k1, b.k2) })
	qWords := r.qWords
	qm := r.qBits[int(local)*qWords : (int(local)+1)*qWords]
	cOff := e.cOffs[r.p]
	cm := r.cBits[cOff[local]:cOff[local+1]]
	for _, ev := range rs.events {
		qw, qb := ev.qIdx>>6, uint64(1)<<(uint(ev.qIdx)&63)
		pw, pb := ev.pos>>6, uint64(1)<<(uint(ev.pos)&63)
		if qm[qw]&qb == 0 && cm[pw]&pb == 0 {
			qm[qw] |= qb
			cm[pw] |= pb
			lb += ev.sim
		}
	}

	// ubSum continuation: the remaining first arrivals in stream order fill
	// the remaining min(|Q|,|C|) slots.
	slices.SortFunc(rs.firsts, func(a, b tokFirst) int { return replayKeyLess(a.k1, a.k2, b.k1, b.k2) })
	for i := 0; i < len(rs.firsts) && mRem > 0; i++ {
		ub += rs.firsts[i].sim
		mRem--
	}
	return lb, ub
}

// lazyEligible reports whether this search can run the cut-off pipeline —
// the caller did not disable it and the first-sight UB filter is active
// (the cut-off's "no unseen set survives" argument is the Lemma 2 filter).
// The scorer, when non-nil, selects scored on-demand edge completion over
// the default stream-drain completion (see the cut handling in
// SearchContext): it is only returned when the source retrieves
// exhaustively w.r.t. a pure pair similarity AND memoizes pairs in a
// shared cross-query cache, which makes completion a sequence of cache
// hits instead of recomputations.
func (g *Group) lazyEligible(opts Options) (scorer index.CompleteScorer, lazy bool) {
	if opts.DisableLazy || opts.DisableIUB {
		return nil, false
	}
	scorer, _ = index.ScoredCompletion(g.lead().src)
	return scorer, true
}

// lazyPoolCap bounds the candidate pool size at which a cut is taken: the
// reconstruction replays full bounds for every alive candidate, so cutting
// under a huge pool would trade stream consumption for more replay work
// than it saves. The pool keeps shrinking as θlb rises, so a blocked cut
// usually fires a few blocks later.
func lazyPoolCap(k int) int {
	if c := 32 * k; c > 64 {
		return c
	}
	return 64
}

// pumpLazy drives the lazy pipeline's refinement phase: it pulls descending
// blocks from the stream into the grow-only shared tuple arena, fans each
// block out to every partition refiner (an epoch barrier — all refiners
// finish block n before block n+1 is pulled), and stops as soon as the
// stream termination condition holds:
//
//	level · min(|Q|, maxUnseenCard) < θlb − ε
//
// — the Lemma 2 first-sight bound sharpened to the sets that can still
// arrive: every set not yet seen has at most maxUnseenCard elements, so its
// upper bound min(|Q|,|C|)·level is already below θlb and it would be
// pruned on arrival. From that point the unseen tail can influence nothing
// except the alive candidates' own bounds, which the cut reconstruction
// completes exactly (DESIGN.md §10). It returns the consumed tuple prefix,
// whether (and at what level) the stream was cut, the stream-order position
// of the last consumed tuple (the tail replay's split point), and false
// when ctx was canceled.
func (g *Group) pumpLazy(ctx context.Context, st *index.Stream, refiners [][]*partRefiner, theta *atomicMax, lead *Engine, sc *queryScratch, qN, k int) (tuples []streamTuple, cut bool, cutLevel float64, at cutPoint, ok bool) {
	nref := 0
	for _, rs := range refiners {
		nref += len(rs)
	}
	blockSize := lead.opts.LazyBlock
	raw := make([]index.Tuple, 0, blockSize)
	var last index.Tuple
	more := true
	for more {
		raw, more = st.NextBlock(raw[:0], blockSize)
		if len(raw) > 0 {
			last = raw[len(raw)-1]
			base := len(tuples)
			for _, t := range raw {
				tuples = append(tuples, lead.noteTuple(t, sc, g.LiveTokens))
			}
			block := tuples[base:]
			if nref == 1 {
				if !refiners[0][0].consume(ctx, block, base) {
					return tuples, false, 0, at, false
				}
			} else {
				var wg sync.WaitGroup
				var canceled sync.Once
				stop := false
				for _, rs := range refiners {
					for _, r := range rs {
						wg.Add(1)
						go func(r *partRefiner) {
							defer wg.Done()
							if !r.consume(ctx, block, base) {
								canceled.Do(func() { stop = true })
							}
						}(r)
					}
				}
				wg.Wait()
				if stop {
					return tuples, false, 0, at, false
				}
			}
		}
		if !more {
			break
		}
		alive := 0
		for _, rs := range refiners {
			for _, r := range rs {
				alive += r.alive
			}
		}
		if alive <= lazyPoolCap(k) {
			bound := 0
			for _, rs := range refiners {
				for _, r := range rs {
					if mc := int(r.maxUnseenCard()); mc > bound {
						bound = mc
					}
				}
			}
			if qN < bound {
				bound = qN
			}
			level := st.Level()
			if t := theta.Load(); t > 0 && level*float64(bound) < t-pruneEps {
				at = cutPoint{phase1: len(tuples) <= qN, sim: last.Sim, token: last.Token, qIdx: int32(last.QIdx)}
				return tuples, true, level, at, true
			}
		}
	}
	return tuples, false, 0, at, true
}
