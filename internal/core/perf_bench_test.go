package core

import (
	"context"
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
)

// The allocation-focused stage microbenchmarks behind the token-interning
// refactor: one per hot stage of Search, per dataset kind. The neighbor
// source is prewarmed through index.Cached so retrieval cost (which the
// paper excludes from its response-time protocol) does not drown the stage
// under measurement. Recorded baselines live in BENCH_tokenintern.json.

type perfFixture struct {
	eng    *Engine
	query  []string
	qids   []int32
	tuples []streamTuple
}

func newPerfFixture(b *testing.B, kind datagen.Kind) *perfFixture {
	b.Helper()
	ds := datagen.GenerateDefault(kind, 0.05)
	cached := index.NewCached(index.NewExact(ds.Repo.Vocabulary(), ds.Model.Vector))
	eng := NewEngine(ds.Repo, cached, Options{K: 10, Alpha: 0.8})
	query := dedupStrings(datagen.NewBenchmark(ds, 1).Queries[0].Elements)
	cached.Prewarm([][]string{query}, eng.Options().Alpha)
	f := &perfFixture{eng: eng, query: query, qids: ds.Repo.TokenIDs(query)}
	f.tuples, _, _, _ = eng.materializeStream(query, f.qids, eng.getScratch(), nil, nil)
	return f
}

func BenchmarkMaterializeStream(b *testing.B) {
	for _, kind := range datagen.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			f := newPerfFixture(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := f.eng.getScratch()
				f.eng.materializeStream(f.query, f.qids, sc, nil, nil)
				f.eng.scratch.Put(sc)
			}
		})
	}
}

func BenchmarkRefinePartition(b *testing.B) {
	for _, kind := range datagen.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			f := newPerfFixture(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				theta := &atomicMax{}
				var stats Stats
				f.eng.refinePartition(context.Background(), len(f.query), f.tuples, 0, theta, &stats, nil)
			}
		})
	}
}
