// Package core implements the Koios search engine: the filter–verification
// framework of the paper with its refinement phase (Alg. 1 — UB/LB filters,
// incremental iLB greedy lower bounds, the bucketized iUB filter of §V) and
// its post-processing phase (Alg. 2 — Llb/Lub/Qub lists, the No-EM filter of
// Lemma 7, parallel exact verification with the label-sum early-termination
// filter of Lemma 8), plus the partitioned scale-out driver of §VI with a
// shared global θlb.
//
// The iUB bound implemented here is the corrected, provably sound variant
// described in DESIGN.md §2; the literal Lemma 6 can under-estimate the
// semantic overlap of a candidate whose greedily matched nodes are re-matched
// by the optimal matching.
package core

import (
	"math"
	"sync/atomic"
	"time"
)

// Options configure a search. The zero value is completed by withDefaults:
// k=10, α=0.8, one partition, one verification worker.
type Options struct {
	// K is the number of result sets.
	K int
	// Alpha is the element similarity threshold α of Def. 1.
	Alpha float64
	// Partitions splits the repository into random partitions searched in
	// parallel with a shared global θlb (§VI).
	Partitions int
	// PartitionSeed fixes the random partitioning.
	PartitionSeed int64
	// Workers bounds concurrent exact-match verifications per partition
	// during post-processing. 1 gives a fully deterministic run.
	Workers int
	// ExactScores forces exact verification of every result set, so scores
	// in the result are exact semantic overlaps even for sets the No-EM
	// filter admitted without matching. Multi-partition searches always
	// verify result sets internally (the exact merge requires it).
	ExactScores bool
	// DisableIUB turns the bucketized iUB filter off (the paper's Baseline+
	// keeps it on; the plain Baseline has it off).
	DisableIUB bool
	// DisableNoEM turns the No-EM filter (Lemma 7) off.
	DisableNoEM bool
	// DisableEarlyTerm turns the EM early-termination filter (Lemma 8) off.
	DisableEarlyTerm bool
	// PruneEvery is the bucket-prune cadence in stream tuples; pruning also
	// always runs when θlb improves. Default 32.
	PruneEvery int
	// Verifier selects the exact-matching algorithm for post-processing.
	Verifier Verifier
	// DisableLazy turns off the lazy token-stream cut-off (DESIGN.md §10)
	// and restores the eager materialize-everything pipeline. The cut-off
	// needs the first-sight UB filter, so DisableIUB implies it. Results
	// are byte-identical either way, for exact and approximate sources
	// alike: stream-drain edge completion re-emits the source's own
	// retrieval, and the scored alternative is only selected for sources
	// that retrieve exhaustively (index.ScoredCompletion).
	DisableLazy bool
	// LazyBlock is the lazy pump's block size in stream tuples — the
	// granularity at which the cut-off condition is evaluated. Smaller
	// blocks cut earlier but synchronize the partition refiners more often.
	// Default 256. Tests randomize it to force cuts at arbitrary stream
	// prefixes.
	LazyBlock int
	// DisableSandwich turns off the verification sandwich (DESIGN.md §12):
	// the row/column-maximum UB prune and the tight-matching shortcut that
	// decide many candidates without running the O(n³) Hungarian solver.
	// Results are byte-identical either way; the knob is the A/B axis for
	// benchmarks and equivalence tests.
	DisableSandwich bool
}

// Verifier names an exact maximum-matching algorithm.
type Verifier int

// The available verifiers.
const (
	// VerifierHungarian is the dense O(n³) Kuhn–Munkres solver with the
	// label-sum early-termination filter (the paper's configuration).
	VerifierHungarian Verifier = iota
	// VerifierSSP is the sparse successive-shortest-paths solver
	// (Jonker–Volgenant style). It runs over the α-edges only, which wins
	// on sparse matching graphs, but has no early-termination filter, so
	// EM-Early-Terminated pruning is unavailable under it.
	VerifierSSP
)

func (v Verifier) String() string {
	if v == VerifierSSP {
		return "ssp"
	}
	return "hungarian"
}

// WithDefaults returns the options with zero values replaced by the
// documented defaults — what NewEngine applies internally, exported for
// callers (like the segment manager) that need the effective values.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.8
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.PruneEvery <= 0 {
		o.PruneEvery = 32
	}
	if o.LazyBlock <= 0 {
		o.LazyBlock = 256
	}
	return o
}

// Result is one set of the top-k result.
type Result struct {
	// SetID identifies the set in the repository.
	SetID int
	// Score is the semantic overlap SO(Q,C) when Verified, otherwise a
	// lower bound that the No-EM filter proved sufficient for membership.
	Score float64
	// Verified reports whether Score is the exact semantic overlap.
	Verified bool
}

// Stats quantifies filter effectiveness, phase timings and data-structure
// footprints; the bench harness prints Tables II–V and Figures 5–7 from it.
// Every candidate set lands in exactly one of the four buckets
// IUBPruned + NoEM + EMEarly + EMFull = Candidates, mirroring the paper's
// per-filter accounting.
type Stats struct {
	// Candidates is the number of distinct sets obtained from the inverted
	// index (non-zero semantic overlap).
	Candidates int
	// IUBPruned counts candidates pruned during refinement (initial
	// UB-filter plus the bucketized iUB filter).
	IUBPruned int
	// NoEM counts post-processing sets never exact-matched: admitted to the
	// result by Lemma 7 or pruned by the lazy UB check.
	NoEM int
	// EMEarly counts exact matches aborted by the label-sum filter.
	EMEarly int
	// EMFull counts completed exact graph matchings.
	EMFull int
	// FinalizeEM counts additional verifications performed only to make
	// result scores exact (ExactScores or the multi-partition merge); they
	// are bookkeeping, not part of the paper's filter accounting.
	FinalizeEM int
	// StreamTuples is the number of token-stream tuples consumed by
	// refinement. Under the lazy pipeline this stops at the cut-off; the
	// eager pipeline consumes the whole stream.
	StreamTuples int
	// StreamRetrieved is the number of α-neighbors the similarity index
	// actually materialized for the query — the retrieval-side cost. The
	// cut-off's savings per query are StreamRetrieved vs. the full
	// α-neighbor count (what an eager search reports here) and
	// StreamTuples vs. StreamRetrieved on the consumption side.
	StreamRetrieved int
	// StreamCut reports that the lazy pipeline stopped the token stream
	// before exhaustion; StreamCutLevel is the similarity level s at the
	// cut (every unseen tuple had sim ≤ s).
	StreamCut      bool
	StreamCutLevel float64
	// HungarianIterations sums augmentation phases across all matchings.
	HungarianIterations int
	// VerifyCalls counts exact-verification calls (post-processing plus
	// finalization), and HungarianSkipped how many of them the verification
	// sandwich decided without running the O(n³) solver (DESIGN.md §12).
	// Their ratio is the hungarian_skipped_frac of the perf harness.
	VerifyCalls      int
	HungarianSkipped int
	// Segments is the number of repository segments the search snapshot
	// spanned (1 for a plain single-engine search). Set once per search,
	// not aggregated.
	Segments int

	// RefineTime and PostprocTime are wall-clock phase durations.
	RefineTime   time.Duration
	PostprocTime time.Duration

	// Footprint estimates of the query-dependent data structures in bytes
	// (Fig. 5d/6d): the token stream and edge cache, refinement candidate
	// state including buckets, and the post-processing lists.
	MemStreamBytes   int64
	MemCandBytes     int64
	MemPostprocBytes int64
}

// TotalBytes is the aggregate footprint reported in the memory experiments.
func (s *Stats) TotalBytes() int64 {
	return s.MemStreamBytes + s.MemCandBytes + s.MemPostprocBytes
}

// ResponseTime is the total query wall time across phases.
func (s *Stats) ResponseTime() time.Duration { return s.RefineTime + s.PostprocTime }

func (s *Stats) add(o *Stats) {
	s.Candidates += o.Candidates
	s.IUBPruned += o.IUBPruned
	s.NoEM += o.NoEM
	s.EMEarly += o.EMEarly
	s.EMFull += o.EMFull
	s.FinalizeEM += o.FinalizeEM
	s.StreamTuples += o.StreamTuples
	s.StreamRetrieved += o.StreamRetrieved
	s.HungarianIterations += o.HungarianIterations
	s.VerifyCalls += o.VerifyCalls
	s.HungarianSkipped += o.HungarianSkipped
	s.MemStreamBytes += o.MemStreamBytes
	s.MemCandBytes += o.MemCandBytes
	s.MemPostprocBytes += o.MemPostprocBytes
}

// atomicMax is a monotonically increasing shared float64 — the global θlb of
// §VI ("all partitions share a global θlb that is the maximum of the θlb").
type atomicMax struct {
	bits atomic.Uint64
}

// Update raises the value to v if v is larger, returning true on change.
func (a *atomicMax) Update(v float64) bool {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) >= v {
			return false
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return true
		}
	}
}

// Load returns the current value.
func (a *atomicMax) Load() float64 {
	return math.Float64frombits(a.bits.Load())
}
