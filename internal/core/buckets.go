package core

// iubBuckets is the refinement-local realization of the paper's bucketized
// iUB filter (§V), specialized to the dense candidate layout: candidates are
// identified by their partition-local index, buckets are a flat slice
// indexed by m (open matching slots) instead of a map, and each bucket is a
// score-ascending min-heap stored in a plain slice. Like pqueue.Buckets it
// uses lazy deletion — a move bumps the candidate's version and pushes a
// fresh entry, stale entries are discarded when they surface at the top of
// their heap — but the whole structure costs two slice allocations per
// refinement call plus amortized heap growth, with no map operations.
type iubBuckets struct {
	heaps   [][]iubEntry // bucket per m; min-heap on score
	version []uint32     // live version per local candidate
}

type iubEntry struct {
	local   int32
	version uint32
	score   float64
}

// newIUBBuckets sizes the filter for candidates with at most maxM open
// slots and nCand partition-local candidates.
func newIUBBuckets(maxM, nCand int) *iubBuckets {
	return &iubBuckets{
		heaps:   make([][]iubEntry, maxM+1),
		version: make([]uint32, nCand),
	}
}

// insert adds a new candidate with m open slots and an initial score.
func (b *iubBuckets) insert(local int32, m int, score float64) {
	b.version[local]++
	b.push(m, iubEntry{local: local, version: b.version[local], score: score})
}

// move relocates a live candidate to bucket m with an updated score. The
// old entry becomes stale and is dropped lazily — mechanically the same
// version-bump-and-push as insert.
func (b *iubBuckets) move(local int32, m int, score float64) {
	b.insert(local, m, score)
}

// prune scans every bucket and removes candidates whose upper bound
// score + m·s falls strictly below theta, invoking onPrune for each.
// Because entries are score-ordered, the scan of a bucket stops at the
// first survivor. Stale entries encountered at a heap top are discarded
// along the way.
func (b *iubBuckets) prune(s, theta float64, onPrune func(local int32)) {
	for m := range b.heaps {
		h := b.heaps[m]
		for len(h) > 0 {
			top := h[0]
			if top.version != b.version[top.local] {
				h = popHeap(h) // stale
				continue
			}
			if top.score+float64(m)*s >= theta {
				break // survivors only from here on
			}
			h = popHeap(h)
			b.version[top.local]++
			onPrune(top.local)
		}
		b.heaps[m] = h
	}
}

func (b *iubBuckets) push(m int, e iubEntry) {
	h := append(b.heaps[m], e)
	// Sift up.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].score <= h[i].score {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	b.heaps[m] = h
}

func popHeap(h []iubEntry) []iubEntry {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h[right].score < h[left].score {
			least = right
		}
		if h[i].score <= h[least].score {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return h
}
