package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/index"
	"repro/internal/sets"
)

const tol = 1e-9

// randomInstance builds a small repository with planted semantic structure
// plus a query, both deterministic in seed.
func randomInstance(seed int64) (*sets.Repository, *embedding.Model, []string) {
	rng := rand.New(rand.NewSource(seed))
	model := embedding.NewModel(embedding.Config{
		Clusters: 20 + rng.Intn(20),
		OOVRate:  0.1 * rng.Float64(),
		Seed:     seed * 31,
	})
	vocab := model.Tokens()
	numSets := 20 + rng.Intn(60)
	raw := make([]sets.Set, numSets)
	for i := range raw {
		card := 1 + rng.Intn(12)
		elems := make([]string, 0, card)
		seen := map[string]bool{}
		for len(elems) < card {
			tok := vocab[rng.Intn(len(vocab))]
			if !seen[tok] {
				seen[tok] = true
				elems = append(elems, tok)
			}
		}
		raw[i] = sets.Set{Elements: elems}
	}
	qCard := 2 + rng.Intn(10)
	query := make([]string, 0, qCard)
	seen := map[string]bool{}
	for len(query) < qCard {
		tok := vocab[rng.Intn(len(vocab))]
		if !seen[tok] {
			seen[tok] = true
			query = append(query, tok)
		}
	}
	return sets.NewRepository(raw), model, query
}

// checkTopK asserts that results form a valid top-k by exact semantic
// overlap: correct size, descending order, and every result's exact score at
// least the true k-th score (ties broken arbitrarily).
func checkTopK(t *testing.T, repo *sets.Repository, model *embedding.Model, query []string, alpha float64, k int, results []Result) {
	t.Helper()
	truth := bruteForceTopK(repo, query, model, alpha)
	wantLen := k
	if len(truth) < k {
		wantLen = len(truth)
	}
	if len(results) != wantLen {
		t.Fatalf("got %d results, want %d (candidates=%d)", len(results), wantLen, len(truth))
	}
	if wantLen == 0 {
		return
	}
	thetaK := truth[wantLen-1].score
	seen := map[int]bool{}
	for i, r := range results {
		if seen[r.SetID] {
			t.Fatalf("duplicate result set %d", r.SetID)
		}
		seen[r.SetID] = true
		exact := exactSO(query, repo.Set(r.SetID), model, alpha)
		if exact < thetaK-tol {
			t.Fatalf("result %d (set %d) has exact SO %v < θ*k %v", i, r.SetID, exact, thetaK)
		}
		if r.Verified && math.Abs(r.Score-exact) > 1e-6 {
			t.Fatalf("verified score %v != exact %v for set %d", r.Score, exact, r.SetID)
		}
		if !r.Verified && r.Score > exact+1e-6 {
			t.Fatalf("unverified score %v exceeds exact %v for set %d", r.Score, exact, r.SetID)
		}
	}
}

// TestSearchExactAgainstBruteForce is the central property test: across
// many random instances and option combinations, Koios must return a valid
// exact top-k.
func TestSearchExactAgainstBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		repo, model, query := randomInstance(seed)
		vocab := repo.Vocabulary()
		src := index.NewFuncIndex(vocab, model)
		rng := rand.New(rand.NewSource(seed * 7))
		opts := Options{
			K:     1 + rng.Intn(8),
			Alpha: 0.5 + 0.4*rng.Float64(),
		}
		switch seed % 4 {
		case 1:
			opts.Partitions = 1 + rng.Intn(4)
		case 2:
			opts.Workers = 1 + rng.Intn(4)
		case 3:
			opts.Partitions = 1 + rng.Intn(4)
			opts.Workers = 1 + rng.Intn(4)
			opts.ExactScores = true
		}
		eng := NewEngine(repo, src, opts)
		results, stats := eng.Search(query)
		checkTopK(t, repo, model, query, eng.Options().Alpha, eng.Options().K, results)
		if stats.Candidates != stats.IUBPruned+stats.NoEM+stats.EMEarly+stats.EMFull {
			t.Fatalf("seed %d: filter accounting broken: %+v", seed, stats)
		}
	}
}

// TestSearchAblationsAgree: disabling any filter must never change the
// result scores — filters are optimizations, not semantics.
func TestSearchAblationsAgree(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		repo, model, query := randomInstance(seed)
		src := index.NewFuncIndex(repo.Vocabulary(), model)
		base := Options{K: 5, Alpha: 0.7, ExactScores: true}
		variants := []Options{
			base,
			{K: 5, Alpha: 0.7, ExactScores: true, DisableIUB: true},
			{K: 5, Alpha: 0.7, ExactScores: true, DisableNoEM: true},
			{K: 5, Alpha: 0.7, ExactScores: true, DisableEarlyTerm: true},
			{K: 5, Alpha: 0.7, ExactScores: true, DisableIUB: true, DisableNoEM: true, DisableEarlyTerm: true},
			{K: 5, Alpha: 0.7, ExactScores: true, Verifier: VerifierSSP},
			{K: 5, Alpha: 0.7, ExactScores: true, Verifier: VerifierSSP, DisableIUB: true, DisableNoEM: true},
		}
		var want []float64
		for vi, opt := range variants {
			results, _ := NewEngine(repo, src, opt).Search(query)
			scores := make([]float64, len(results))
			for i, r := range results {
				scores[i] = r.Score
			}
			if vi == 0 {
				want = scores
				continue
			}
			if len(scores) != len(want) {
				t.Fatalf("seed %d variant %d: %d results, want %d", seed, vi, len(scores), len(want))
			}
			for i := range scores {
				if math.Abs(scores[i]-want[i]) > 1e-6 {
					t.Fatalf("seed %d variant %d rank %d: score %v, want %v", seed, vi, i, scores[i], want[i])
				}
			}
		}
	}
}

// TestSearchPartitionsAgree: the same query must yield the same top-k scores
// for any partition count.
func TestSearchPartitionsAgree(t *testing.T) {
	repo, model, query := randomInstance(7)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	var want []float64
	for _, parts := range []int{1, 2, 3, 5, 9} {
		results, _ := NewEngine(repo, src, Options{K: 6, Alpha: 0.7, Partitions: parts, ExactScores: true}).Search(query)
		scores := make([]float64, len(results))
		for i, r := range results {
			scores[i] = r.Score
		}
		if want == nil {
			want = scores
			continue
		}
		if len(scores) != len(want) {
			t.Fatalf("partitions=%d: %d results, want %d", parts, len(scores), len(want))
		}
		for i := range scores {
			if math.Abs(scores[i]-want[i]) > 1e-6 {
				t.Fatalf("partitions=%d rank %d: %v, want %v", parts, i, scores[i], want[i])
			}
		}
	}
}

// TestPaperExampleEndToEnd reproduces Example 2 / Figure 1: with semantic
// overlap, C2 is the top-1 result (score 4.49), whereas C1 scores 4.09.
func TestPaperExampleEndToEnd(t *testing.T) {
	q := []string{"LA", "Seattle", "Columbia", "Blaine", "BigApple", "Charleston"}
	c1 := sets.Set{Name: "C1", Elements: []string{"LA", "Blain", "Appleton", "MtPleasant", "Lexington", "WestCoast"}}
	c2 := sets.Set{Name: "C2", Elements: []string{"LA", "Sacramento", "Southern", "Blain", "SC", "Minnesota", "NewYorkCity"}}
	repo := sets.NewRepository([]sets.Set{c1, c2})

	ps := newPairSim()
	// C1 edges (Fig. 1, α=0.7): Blaine–Blain 0.99 plus three 0.70 edges.
	ps.set("Blaine", "Blain", 0.99)
	ps.set("Seattle", "WestCoast", 0.70)
	ps.set("Columbia", "Lexington", 0.70)
	ps.set("Charleston", "MtPleasant", 0.70)
	// C2 edges: the conflict structure that defeats greedy matching.
	ps.set("BigApple", "NewYorkCity", 0.90)
	ps.set("Columbia", "Southern", 0.85)
	ps.set("Columbia", "SC", 0.80)
	ps.set("Charleston", "Southern", 0.80)
	// Sub-α noise that must be ignored.
	ps.set("Seattle", "Sacramento", 0.50)

	vocab := repo.Vocabulary()
	src := index.NewFuncIndex(vocab, ps)
	eng := NewEngine(repo, src, Options{K: 1, Alpha: 0.7, ExactScores: true})
	results, _ := eng.Search(q)
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].SetID != 1 {
		t.Fatalf("top-1 = %s, want C2", repo.Set(results[0].SetID).Name)
	}
	if math.Abs(results[0].Score-4.49) > tol {
		t.Fatalf("SO(Q,C2) = %v, want 4.49", results[0].Score)
	}
	// And top-2 must rank C2 above C1 with C1 = 4.09.
	results, _ = NewEngine(repo, src, Options{K: 2, Alpha: 0.7, ExactScores: true}).Search(q)
	if len(results) != 2 || results[1].SetID != 0 {
		t.Fatalf("top-2 = %+v", results)
	}
	if math.Abs(results[1].Score-4.09) > tol {
		t.Fatalf("SO(Q,C1) = %v, want 4.09", results[1].Score)
	}
}

func TestSearchEmptyAndDegenerateQueries(t *testing.T) {
	repo, model, _ := randomInstance(5)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	eng := NewEngine(repo, src, Options{K: 3, Alpha: 0.8})
	if results, _ := eng.Search(nil); len(results) != 0 {
		t.Fatalf("empty query returned %v", results)
	}
	// A query of unknown tokens has no candidates.
	if results, _ := eng.Search([]string{"zz-unknown-1", "zz-unknown-2"}); len(results) != 0 {
		t.Fatalf("unknown-token query returned %v", results)
	}
}

func TestSearchDuplicateQueryElements(t *testing.T) {
	repo, model, query := randomInstance(9)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	dup := append(append([]string{}, query...), query...)
	r1, _ := NewEngine(repo, src, Options{K: 4, Alpha: 0.7, ExactScores: true}).Search(query)
	r2, _ := NewEngine(repo, src, Options{K: 4, Alpha: 0.7, ExactScores: true}).Search(dup)
	if len(r1) != len(r2) {
		t.Fatalf("duplicated query changed result count: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if math.Abs(r1[i].Score-r2[i].Score) > tol {
			t.Fatalf("duplicated query changed scores at rank %d", i)
		}
	}
}

func TestSearchSelfQueryRanksSourceFirst(t *testing.T) {
	repo, model, _ := randomInstance(11)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	eng := NewEngine(repo, src, Options{K: 1, Alpha: 0.8, ExactScores: true})
	// Query with the elements of set 0: vanilla overlap |C| is attainable
	// only by supersets of it, and set 0 itself scores at least |C|.
	target := repo.Set(0)
	results, _ := eng.Search(target.Elements)
	if len(results) != 1 {
		t.Fatal("no result for self query")
	}
	if results[0].Score < float64(len(target.Elements))-tol {
		t.Fatalf("self query top-1 score %v below vanilla overlap %d", results[0].Score, len(target.Elements))
	}
}

func TestSearchKLargerThanCandidates(t *testing.T) {
	repo, model, query := randomInstance(13)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	eng := NewEngine(repo, src, Options{K: 10_000, Alpha: 0.7, ExactScores: true})
	results, _ := eng.Search(query)
	truth := bruteForceTopK(repo, query, model, 0.7)
	if len(results) != len(truth) {
		t.Fatalf("k>candidates: got %d results, want %d", len(results), len(truth))
	}
}

func TestSearchDeterministicSinglePartition(t *testing.T) {
	repo, model, query := randomInstance(17)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	opts := Options{K: 5, Alpha: 0.7}
	var prev []Result
	var prevStats Stats
	for trial := 0; trial < 3; trial++ {
		results, stats := NewEngine(repo, src, opts).Search(query)
		if trial == 0 {
			prev, prevStats = results, stats
			continue
		}
		if fmt.Sprint(results) != fmt.Sprint(prev) {
			t.Fatalf("results differ across runs:\n%v\n%v", results, prev)
		}
		if stats.Candidates != prevStats.Candidates || stats.IUBPruned != prevStats.IUBPruned ||
			stats.EMFull != prevStats.EMFull || stats.EMEarly != prevStats.EMEarly {
			t.Fatalf("stats differ across runs: %+v vs %+v", stats, prevStats)
		}
	}
}

func TestStatsPhaseAccounting(t *testing.T) {
	repo, model, query := randomInstance(21)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	_, stats := NewEngine(repo, src, Options{K: 3, Alpha: 0.7}).Search(query)
	if stats.Candidates == 0 {
		t.Skip("instance produced no candidates")
	}
	if stats.StreamTuples <= 0 {
		t.Fatal("no stream tuples counted")
	}
	if stats.TotalBytes() <= 0 {
		t.Fatal("no memory accounted")
	}
	if stats.ResponseTime() <= 0 {
		t.Fatal("no time accounted")
	}
	if stats.IUBPruned+stats.NoEM+stats.EMEarly+stats.EMFull != stats.Candidates {
		t.Fatalf("classification does not partition candidates: %+v", stats)
	}
}

// TestFiltersActuallyPrune uses a larger instance and checks the iUB filter
// eliminates a meaningful share of candidates — the paper's headline claim
// (>85% on medium/large queries) at miniature scale.
func TestFiltersActuallyPrune(t *testing.T) {
	model := embedding.NewModel(embedding.Config{Clusters: 150, Seed: 77})
	vocab := model.Tokens()
	rng := rand.New(rand.NewSource(78))
	raw := make([]sets.Set, 400)
	for i := range raw {
		card := 3 + rng.Intn(25)
		elems := make([]string, 0, card)
		for len(elems) < card {
			elems = append(elems, vocab[rng.Intn(len(vocab))])
		}
		raw[i] = sets.Set{Elements: elems}
	}
	repo := sets.NewRepository(raw)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	query := repo.Set(0).Elements
	_, stats := NewEngine(repo, src, Options{K: 5, Alpha: 0.8}).Search(query)
	if stats.Candidates < 50 {
		t.Skipf("only %d candidates; instance too sparse", stats.Candidates)
	}
	if frac := float64(stats.IUBPruned) / float64(stats.Candidates); frac < 0.3 {
		t.Fatalf("iUB pruned only %.0f%% of %d candidates", frac*100, stats.Candidates)
	}
}

func TestAtomicMax(t *testing.T) {
	var a atomicMax
	if a.Load() != 0 {
		t.Fatal("zero value not 0")
	}
	if !a.Update(1.5) || a.Load() != 1.5 {
		t.Fatal("raise failed")
	}
	if a.Update(1.0) {
		t.Fatal("lowering succeeded")
	}
	if a.Load() != 1.5 {
		t.Fatal("value changed on failed update")
	}
}
