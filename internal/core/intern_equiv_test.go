package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/matching"
	"repro/internal/pqueue"
	"repro/internal/sets"
)

// This file keeps the pre-interning, string-keyed implementation of the
// whole query pipeline as an oracle: tokens are compared and hashed as
// strings, the edge cache is a map[string][]qEdge, candidate state lives in
// a map[int32]*state with a map[string]struct{} per candidate. The interned
// engine (integer token IDs, CSR postings, dense candidate state) must
// return byte-identical results and identical pruning statistics — the two
// implementations differ only in data representation, never in algorithm.

type oracleTuple struct {
	qIdx  int32
	token string
	sim   float64
	first bool
}

type oracleEdge struct {
	qIdx int32
	sim  float64
}

type oracleCand struct {
	ubSum    float64
	lbScore  float64
	mRem     int32
	pruned   bool
	qMask    []uint64
	cMatched map[string]struct{}
}

type oracleEngine struct {
	repo  *sets.Repository
	src   index.NeighborSource
	opts  Options
	parts [][]int
	invs  []*index.Inverted
}

func newOracleEngine(repo *sets.Repository, src index.NeighborSource, opts Options) *oracleEngine {
	opts = opts.withDefaults()
	e := &oracleEngine{repo: repo, src: src, opts: opts}
	e.parts = repo.Partition(opts.Partitions, opts.PartitionSeed)
	e.invs = make([]*index.Inverted, len(e.parts))
	for i, p := range e.parts {
		e.invs[i] = index.NewInvertedSubset(repo, p)
	}
	return e
}

func (e *oracleEngine) Search(query []string) ([]Result, Stats) {
	var stats Stats
	query = dedupStrings(query)
	if len(query) == 0 {
		return nil, stats
	}

	tuples, cache := e.materializeStream(query)
	stats.StreamTuples = len(tuples)

	theta := &atomicMax{}
	partStats := make([]Stats, len(e.parts))
	partSurv := make([][]survivor, len(e.parts))
	var wg sync.WaitGroup
	for i := range e.parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partSurv[i] = e.refinePartition(query, tuples, e.invs[i], theta, &partStats[i])
		}(i)
	}
	wg.Wait()
	for i := range partStats {
		stats.add(&partStats[i])
	}

	var survivors []survivor
	for i := range partSurv {
		survivors = append(survivors, partSurv[i]...)
	}
	llb := pqueue.NewTopK(e.opts.K)
	for _, sv := range survivors {
		llb.Update(sv.setID, sv.lb)
	}
	theta.Update(llb.Bottom())
	results := e.postproc(query, cache, survivors, llb, theta, &stats)

	if e.opts.ExactScores {
		for i, r := range results {
			if r.Verified {
				continue
			}
			res := e.verify(query, cache, e.repo.Set(r.SetID), theta)
			stats.HungarianIterations += res.Iterations
			stats.FinalizeEM++
			results[i].Score = res.Score
			results[i].Verified = true
		}
		sort.Slice(results, func(i, j int) bool {
			if results[i].Score != results[j].Score {
				return results[i].Score > results[j].Score
			}
			return results[i].SetID < results[j].SetID
		})
	}
	return results, stats
}

func (e *oracleEngine) materializeStream(query []string) ([]oracleTuple, map[string][]oracleEdge) {
	st := index.NewStream(query, e.src, e.opts.Alpha)
	var tuples []oracleTuple
	seen := make(map[string]bool)
	cache := make(map[string][]oracleEdge)
	for {
		tup, ok := st.Next()
		if !ok {
			break
		}
		first := !seen[tup.Token]
		seen[tup.Token] = true
		tuples = append(tuples, oracleTuple{qIdx: int32(tup.QIdx), token: tup.Token, sim: tup.Sim, first: first})
		cache[tup.Token] = append(cache[tup.Token], oracleEdge{qIdx: int32(tup.QIdx), sim: tup.Sim})
	}
	return tuples, cache
}

func (e *oracleEngine) refinePartition(query []string, tuples []oracleTuple, inv *index.Inverted, theta *atomicMax, stats *Stats) []survivor {
	opts := e.opts
	state := make(map[int32]*oracleCand)
	buckets := pqueue.NewBuckets()
	llb := pqueue.NewTopK(opts.K)
	qWords := (len(query) + 63) / 64
	lastPruneTheta := 0.0

	markPruned := func(key int, _ float64, _ int) {
		state[int32(key)].pruned = true
		stats.IUBPruned++
	}

	for ti, tup := range tuples {
		s := tup.sim
		for _, sid := range inv.Sets(tup.token) {
			st := state[sid]
			if st == nil {
				stats.Candidates++
				c := e.repo.Set(int(sid))
				slots := min(len(query), len(c.Elements))
				st = &oracleCand{
					mRem:     int32(slots),
					qMask:    make([]uint64, qWords),
					cMatched: make(map[string]struct{}, 4),
				}
				state[sid] = st
				if !opts.DisableIUB {
					if t := theta.Load(); t > 0 && float64(slots)*s < t-pruneEps {
						st.pruned = true
						stats.IUBPruned++
						continue
					}
					buckets.Insert(int(sid), slots, 0)
				}
			}
			if st.pruned {
				continue
			}
			if tup.first && st.mRem > 0 {
				st.ubSum += s
				st.mRem--
				if !opts.DisableIUB {
					buckets.Move(int(sid), int(st.mRem), st.ubSum)
				}
			}
			w, bit := tup.qIdx/64, uint64(1)<<(tup.qIdx%64)
			if st.qMask[w]&bit == 0 {
				if _, used := st.cMatched[tup.token]; !used {
					st.qMask[w] |= bit
					st.cMatched[tup.token] = struct{}{}
					st.lbScore += s
					if llb.Update(int(sid), st.lbScore) {
						theta.Update(llb.Bottom())
					}
				}
			}
		}
		if !opts.DisableIUB {
			t := theta.Load()
			if t > lastPruneTheta || ti%opts.PruneEvery == opts.PruneEvery-1 {
				lastPruneTheta = t
				buckets.Prune(s, t-pruneEps, markPruned)
			}
		}
	}

	finalTheta := theta.Load()
	var out []survivor
	for sid, st := range state {
		if st.pruned {
			continue
		}
		if !opts.DisableIUB && finalTheta > 0 && st.ubSum < finalTheta-pruneEps {
			stats.IUBPruned++
			continue
		}
		out = append(out, survivor{setID: int(sid), lb: st.lbScore, ub: st.ubSum})
	}
	return out
}

func (e *oracleEngine) postproc(query []string, cache map[string][]oracleEdge, survivors []survivor, llb *pqueue.TopK, theta *atomicMax, stats *Stats) []Result {
	opts := e.opts
	k := opts.K
	ub := make(map[int]float64, len(survivors))
	lb := make(map[int]float64, len(survivors))
	verified := make(map[int]float64)
	checked := make(map[int]bool)
	dropped := make(map[int]bool)

	lub := pqueue.NewTopK(k)
	qub := pqueue.NewHeap[ubEntry](ubMore)
	for _, sv := range survivors {
		ub[sv.setID] = sv.ub
		lb[sv.setID] = sv.lb
		qub.Push(ubEntry{ub: sv.ub, sid: sv.setID})
	}

	refill := func() {
		for lub.Len() < k && qub.Len() > 0 {
			top := qub.Pop()
			if dropped[top.sid] || lub.Contains(top.sid) || top.ub != ub[top.sid] {
				continue
			}
			if t := theta.Load(); top.ub < t-pruneEps {
				dropped[top.sid] = true
				continue
			}
			lub.Update(top.sid, top.ub)
		}
	}

	apply := func(sid int, res matching.Result) {
		stats.HungarianIterations += res.Iterations
		if res.Pruned {
			stats.EMEarly++
			lub.Remove(sid)
			dropped[sid] = true
			return
		}
		stats.EMFull++
		so := res.Score
		verified[sid] = so
		checked[sid] = true
		lb[sid] = so
		if llb.Update(sid, so) {
			theta.Update(llb.Bottom())
		}
		lub.Remove(sid)
		ub[sid] = so
		qub.Push(ubEntry{ub: so, sid: sid})
	}

	for {
		refill()
		mutated := false
		keys := lub.Keys()
		sort.Ints(keys)
		t := theta.Load()
		for _, key := range keys {
			if ub[key] < t-pruneEps {
				lub.Remove(key)
				dropped[key] = true
				mutated = true
				continue
			}
			if checked[key] {
				continue
			}
			if !lub.Full() || (!opts.DisableNoEM && lb[key] >= lub.Bottom()) {
				checked[key] = true
				mutated = true
			}
		}
		if mutated {
			continue
		}
		pending := make([]int, 0, k)
		for _, key := range lub.Keys() {
			if !checked[key] {
				pending = append(pending, key)
			}
		}
		if len(pending) == 0 {
			break
		}
		sort.Slice(pending, func(i, j int) bool {
			if ub[pending[i]] != ub[pending[j]] {
				return ub[pending[i]] > ub[pending[j]]
			}
			return pending[i] < pending[j]
		})
		if len(pending) > opts.Workers {
			pending = pending[:opts.Workers]
		}
		if len(pending) == 1 {
			sid := pending[0]
			apply(sid, e.verify(query, cache, e.repo.Set(sid), theta))
			continue
		}
		type vres struct {
			sid int
			res matching.Result
		}
		ch := make(chan vres, len(pending))
		var wg sync.WaitGroup
		for _, sid := range pending {
			wg.Add(1)
			go func(sid int) {
				defer wg.Done()
				ch <- vres{sid: sid, res: e.verify(query, cache, e.repo.Set(sid), theta)}
			}(sid)
		}
		go func() { wg.Wait(); close(ch) }()
		for v := range ch {
			apply(v.sid, v.res)
		}
	}

	stats.NoEM += len(survivors) - stats.EMFull - stats.EMEarly

	keys := lub.Keys()
	sort.Ints(keys)
	out := make([]Result, 0, len(keys))
	for _, key := range keys {
		if so, ok := verified[key]; ok {
			out = append(out, Result{SetID: key, Score: so, Verified: true})
		} else {
			out = append(out, Result{SetID: key, Score: lb[key], Verified: false})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].SetID < out[j].SetID
	})
	return out
}

func (e *oracleEngine) verify(query []string, cache map[string][]oracleEdge, c sets.Set, theta *atomicMax) matching.Result {
	rowOf := make(map[int32]int)
	var rows []int32
	type colEdges struct {
		edges []oracleEdge
	}
	var cols []colEdges
	for _, tok := range c.Elements {
		edges := cache[tok]
		if len(edges) == 0 {
			continue
		}
		cols = append(cols, colEdges{edges: edges})
		for _, ed := range edges {
			if _, ok := rowOf[ed.qIdx]; !ok {
				rowOf[ed.qIdx] = 0
				rows = append(rows, ed.qIdx)
			}
		}
	}
	if len(cols) == 0 {
		return matching.Result{}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for i, q := range rows {
		rowOf[q] = i
	}
	if e.opts.Verifier == VerifierSSP {
		adj := make([][]matching.SparseEdge, len(rows))
		for j, ce := range cols {
			for _, ed := range ce.edges {
				r := rowOf[ed.qIdx]
				adj[r] = append(adj[r], matching.SparseEdge{Col: j, W: ed.sim})
			}
		}
		return matching.SparseMatch(adj, len(cols))
	}
	var bound func() float64
	if theta != nil && !e.opts.DisableEarlyTerm {
		bound = theta.Load
	}
	// Mirror of the engine's verification sandwich (verify.go): same maxima,
	// same prune and shortcut decisions, so EMEarly/EMFull accounting stays
	// comparable bit for bit.
	var rowMax, colMax []float64
	if !e.opts.DisableSandwich {
		rowMax = make([]float64, len(rows))
		colMax = make([]float64, len(cols))
		colRows := make([][]int32, len(cols))
		for j, ce := range cols {
			adj := make([]int32, len(ce.edges))
			for k, ed := range ce.edges {
				r := rowOf[ed.qIdx]
				adj[k] = int32(r)
				if ed.sim > rowMax[r] {
					rowMax[r] = ed.sim
				}
				if ed.sim > colMax[j] {
					colMax[j] = ed.sim
				}
			}
			colRows[j] = adj
		}
		if matching.SandwichPrune(rowMax, colMax, colRows, bound) {
			return matching.Result{Pruned: true, Skipped: true}
		}
	}
	w := make([][]float64, len(rows))
	for i := range w {
		w[i] = make([]float64, len(cols))
	}
	for j, ce := range cols {
		for _, ed := range ce.edges {
			w[rowOf[ed.qIdx]][j] = ed.sim
		}
	}
	if !e.opts.DisableSandwich {
		if res, ok := matching.TightMatch(w, rowMax); ok {
			return res
		}
	}
	return matching.HungarianBounded(w, bound)
}

// TestInternedEngineMatchesStringOracle is the equivalence test for the
// token-interning refactor: on every dataset kind, the interned engine must
// return byte-identical results and identical pruning statistics to the
// string-path oracle above. Partitions=1 and Workers=1 keep both pipelines
// fully deterministic, so equality is exact, not approximate.
func TestInternedEngineMatchesStringOracle(t *testing.T) {
	for _, kind := range datagen.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			ds := datagen.GenerateDefault(kind, 0.02)
			src := index.NewExact(ds.Repo.Vocabulary(), ds.Model.Vector)
			queries := datagen.NewBenchmark(ds, 17).Queries
			if len(queries) > 4 {
				queries = queries[:4]
			}
			for _, withExact := range []bool{false, true} {
				// DisableLazy pins the interned engine to the eager pipeline
				// the oracle implements: this test compares data
				// representations (strings vs interned IDs), so both sides
				// must run the same algorithm tuple for tuple — stats
				// included. Lazy-vs-eager equivalence has its own suite
				// (lazy_equiv_test.go).
				opts := Options{K: 10, Alpha: 0.8, ExactScores: withExact, DisableLazy: true}
				eng := NewEngine(ds.Repo, src, opts)
				oracle := newOracleEngine(ds.Repo, src, opts)
				for qi, q := range queries {
					got, gs := eng.Search(q.Elements)
					want, ws := oracle.Search(q.Elements)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("query %d (exact=%v): results diverge\ninterned: %v\noracle:   %v",
							qi, withExact, got, want)
					}
					if gs.Candidates != ws.Candidates || gs.IUBPruned != ws.IUBPruned ||
						gs.EMEarly != ws.EMEarly || gs.EMFull != ws.EMFull ||
						gs.NoEM != ws.NoEM || gs.StreamTuples != ws.StreamTuples {
						t.Fatalf("query %d (exact=%v): stats diverge\ninterned: %+v\noracle:   %+v",
							qi, withExact, gs, ws)
					}
				}
			}
		})
	}
}

// TestInternedEngineMatchesOracleRandom covers the random-instance space the
// other engine tests use, beyond the four synthetic dataset shapes.
func TestInternedEngineMatchesOracleRandom(t *testing.T) {
	for seed := int64(300); seed < 330; seed++ {
		repo, model, query := randomInstance(seed)
		src := index.NewFuncIndex(repo.Vocabulary(), model)
		opts := Options{K: 1 + int(seed%7), Alpha: 0.55 + 0.1*float64(seed%4), DisableLazy: true}
		got, gs := NewEngine(repo, src, opts).Search(query)
		want, ws := newOracleEngine(repo, src, opts).Search(query)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: results diverge\ninterned: %v\noracle:   %v", seed, got, want)
		}
		if gs.Candidates != ws.Candidates || gs.IUBPruned != ws.IUBPruned ||
			gs.EMEarly != ws.EMEarly || gs.EMFull != ws.EMFull {
			t.Fatalf("seed %d: stats diverge\ninterned: %+v\noracle:   %+v", seed, gs, ws)
		}
	}
}
