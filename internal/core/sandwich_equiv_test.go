package core

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/sim"
)

// This file is the equivalence suite for the verification sandwich
// (DESIGN.md §12): with the sandwich enabled the engine must return
// byte-identical results and identical filter accounting to a plain
// Hungarian-only run — the pre-solvers only ever decide candidates they can
// decide exactly. It also pins the engine-level equivalence of the kernel
// scan paths (admission filters + batched evaluation).

// searchSandwichBoth runs one query through a sandwich-enabled and a
// sandwich-disabled engine and fails on any observable divergence; it returns
// the sandwich run's stats.
func searchSandwichBoth(t *testing.T, on, off *Engine, query []string, label string) Stats {
	t.Helper()
	ores, ost := on.Search(query)
	fres, fst := off.Search(query)
	if fmt.Sprint(ores) != fmt.Sprint(fres) {
		t.Fatalf("%s: results diverge\nsandwich: %v\nplain:    %v", label, ores, fres)
	}
	if ost.Candidates != fst.Candidates || ost.IUBPruned != fst.IUBPruned ||
		ost.NoEM != fst.NoEM || ost.EMEarly != fst.EMEarly || ost.EMFull != fst.EMFull ||
		ost.FinalizeEM != fst.FinalizeEM || ost.StreamTuples != fst.StreamTuples {
		t.Fatalf("%s: stats diverge\nsandwich: %+v\nplain:    %+v", label, ost, fst)
	}
	if ost.VerifyCalls != fst.VerifyCalls {
		t.Fatalf("%s: VerifyCalls diverge: %d vs %d", label, ost.VerifyCalls, fst.VerifyCalls)
	}
	if fst.HungarianSkipped != 0 {
		t.Fatalf("%s: disabled sandwich reported %d skips", label, fst.HungarianSkipped)
	}
	return ost
}

// TestSandwichMatchesPlainAllKinds compares the two verification paths over
// every synthetic dataset kind, with and without ExactScores, and requires
// the shortcut to actually fire somewhere — a sandwich that never decides
// anything would pass equivalence vacuously.
func TestSandwichMatchesPlainAllKinds(t *testing.T) {
	totalSkipped := 0
	for _, kind := range datagen.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			ds := datagen.GenerateDefault(kind, 0.05)
			src := index.NewExact(ds.Repo.Vocabulary(), ds.Model.Vector)
			queries := datagen.NewBenchmark(ds, 19).Queries
			if len(queries) > 8 {
				queries = queries[:8]
			}
			for _, withExact := range []bool{false, true} {
				on := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.8, ExactScores: withExact})
				off := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.8, ExactScores: withExact, DisableSandwich: true})
				for qi, q := range queries {
					st := searchSandwichBoth(t, on, off, q.Elements,
						fmt.Sprintf("%s exact=%v query %d", kind, withExact, qi))
					totalSkipped += st.HungarianSkipped
				}
			}
		})
	}
	if totalSkipped == 0 {
		t.Fatal("the sandwich never skipped a Hungarian run on any kind — it is untested and useless")
	}
}

// TestSandwichRandomInstances fuzzes the equivalence across random
// repositories, ks, and αs on the function-scan source.
func TestSandwichRandomInstances(t *testing.T) {
	skipped := 0
	for seed := int64(600); seed < 640; seed++ {
		repo, model, query := randomInstance(seed)
		src := index.NewFuncIndex(repo.Vocabulary(), model)
		opts := Options{K: 1 + int(seed%7), Alpha: 0.55 + 0.1*float64(seed%4)}
		offOpts := opts
		offOpts.DisableSandwich = true
		st := searchSandwichBoth(t, NewEngine(repo, src, opts), NewEngine(repo, src, offOpts),
			query, fmt.Sprintf("seed %d", seed))
		skipped += st.HungarianSkipped
	}
	if skipped == 0 {
		t.Fatal("no random instance exercised the shortcut")
	}
}

// hiddenKernelFunc hides the Bounded/Batcher capabilities of a similarity
// function, forcing the index scan paths onto the plain per-pair loop.
type hiddenKernelFunc struct{ fn sim.Func }

func (p hiddenKernelFunc) Sim(a, b string) float64 { return p.fn.Sim(a, b) }
func (p hiddenKernelFunc) Name() string            { return p.fn.Name() }

// TestKernelScanEngineEquivalence: a full search through the kernel scan path
// (admission filters on and off) must be indistinguishable — results and all
// stats — from one through the plain per-pair scan.
func TestKernelScanEngineEquivalence(t *testing.T) {
	candidates := 0
	for seed := int64(700); seed < 720; seed++ {
		repo, _, query := randomInstance(seed)
		fn := sim.EditSimilarity{}
		kernelSrc := index.NewFuncIndex(repo.Vocabulary(), fn)
		unfilteredSrc := index.NewFuncIndex(repo.Vocabulary(), fn)
		unfilteredSrc.SetKernelFilters(false)
		plainSrc := index.NewFuncIndex(repo.Vocabulary(), hiddenKernelFunc{fn})
		opts := Options{K: 5, Alpha: 0.5}
		pres, pst := NewEngine(repo, plainSrc, opts).Search(query)
		for name, src := range map[string]*index.FuncIndex{"kernel": kernelSrc, "unfiltered": unfilteredSrc} {
			res, st := NewEngine(repo, src, opts).Search(query)
			if fmt.Sprint(res) != fmt.Sprint(pres) {
				t.Fatalf("seed %d %s: results diverge\ngot:  %v\nwant: %v", seed, name, res, pres)
			}
			if st.Candidates != pst.Candidates || st.StreamTuples != pst.StreamTuples ||
				st.EMEarly != pst.EMEarly || st.EMFull != pst.EMFull || st.NoEM != pst.NoEM {
				t.Fatalf("seed %d %s: stats diverge\ngot:  %+v\nwant: %+v", seed, name, st, pst)
			}
		}
		candidates += pst.Candidates
	}
	if candidates == 0 {
		t.Fatal("no candidates on any seed — the kernel path went unexercised")
	}
}

// BenchmarkVerifySandwich measures the verification sandwich's effect on the
// dblp-shaped workload (large cardinalities, Hungarian-dominated).
func BenchmarkVerifySandwich(b *testing.B) {
	ds := datagen.GenerateDefault(datagen.DBLP, 0.05)
	src := index.NewExact(ds.Repo.Vocabulary(), ds.Model.Vector)
	queries := datagen.NewBenchmark(ds, 17).Queries
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"sandwich", false}, {"hungarian", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			eng := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.8, DisableSandwich: cfg.disable})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Search(queries[i%len(queries)].Elements)
			}
		})
	}
}
