package core

import (
	"sort"

	"repro/internal/matching"
	"repro/internal/sets"
	"repro/internal/sim"
)

// scoredSet pairs a set with its exact semantic overlap.
type scoredSet struct {
	setID int
	score float64
}

// exactSO computes the semantic overlap of query and c by direct Hungarian
// matching over the full α-thresholded similarity matrix — the test oracle
// for the whole engine.
func exactSO(query []string, c sets.Set, fn sim.Func, alpha float64) float64 {
	w := make([][]float64, len(query))
	any := false
	for i, q := range query {
		w[i] = make([]float64, len(c.Elements))
		for j, t := range c.Elements {
			s := fn.Sim(q, t)
			if s >= alpha {
				w[i][j] = s
				any = true
			}
		}
	}
	if !any {
		return 0
	}
	return matching.Hungarian(w).Score
}

// bruteForceTopK returns every candidate (SO > 0) in descending score
// order.
func bruteForceTopK(repo *sets.Repository, query []string, fn sim.Func, alpha float64) []scoredSet {
	var out []scoredSet
	for _, c := range repo.Sets() {
		if so := exactSO(query, c, fn, alpha); so > 0 {
			out = append(out, scoredSet{setID: c.ID, score: so})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].setID < out[j].setID
	})
	return out
}

// pairSim is a test similarity function defined by an explicit symmetric
// pair table; unlisted pairs have similarity 0 and identical strings 1.
type pairSim struct {
	pairs map[[2]string]float64
}

func newPairSim() *pairSim { return &pairSim{pairs: make(map[[2]string]float64)} }

func (p *pairSim) set(a, b string, s float64) {
	p.pairs[[2]string{a, b}] = s
	p.pairs[[2]string{b, a}] = s
}

func (p *pairSim) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	return p.pairs[[2]string{a, b}]
}

func (p *pairSim) Name() string { return "pair-table" }
