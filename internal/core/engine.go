package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/sets"
)

// Engine is a Koios search engine over a fixed repository and similarity
// index. Index construction happens once in NewEngine (the paper likewise
// excludes index construction from query response time, §VIII-A3); Search
// may then be called for any number of queries and is safe for concurrent
// use by multiple goroutines.
type Engine struct {
	repo  *sets.Repository
	src   index.NeighborSource
	opts  Options
	parts [][]int
	invs  []*index.Inverted
}

// NewEngine builds the partition layout and one inverted index per
// partition.
func NewEngine(repo *sets.Repository, src index.NeighborSource, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{repo: repo, src: src, opts: opts}
	e.parts = repo.Partition(opts.Partitions, opts.PartitionSeed)
	e.invs = make([]*index.Inverted, len(e.parts))
	for i, p := range e.parts {
		e.invs[i] = index.NewInvertedSubset(repo, p)
	}
	return e
}

// Options returns the engine's effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }

// streamTuple is one materialized token-stream tuple. first marks the
// global first arrival of the token, i.e. the tuple carrying the token's
// maximum similarity to any query element.
type streamTuple struct {
	qIdx  int32
	token string
	sim   float64
	first bool
}

// qEdge is a cached bipartite edge endpoint: query element index and
// α-thresholded similarity. The edge cache reuses every similarity computed
// during refinement for the verification matrices (§VIII-A3: "we cache the
// similarity of returned vectors ... for reuse during the initialization of
// the similarity matrix used in graph matching").
type qEdge struct {
	qIdx int32
	sim  float64
}

// Search runs the top-k semantic overlap search for query and returns the
// result sets in descending score order together with filter statistics.
func (e *Engine) Search(query []string) ([]Result, Stats) {
	var stats Stats
	query = dedupStrings(query)
	if len(query) == 0 {
		return nil, stats
	}

	refineStart := time.Now()
	tuples, cache, streamMem := e.materializeStream(query)
	stats.StreamTuples = len(tuples)
	stats.MemStreamBytes = streamMem

	theta := &atomicMax{}
	partStats := make([]Stats, len(e.parts))
	partSurv := make([][]survivor, len(e.parts))

	var wg sync.WaitGroup
	for i := range e.parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partSurv[i] = e.refinePartition(query, tuples, e.invs[i], theta, &partStats[i])
		}(i)
	}
	wg.Wait()
	for i := range partStats {
		stats.add(&partStats[i])
	}
	stats.RefineTime = time.Since(refineStart)

	// Post-processing runs once over the union of the partitions'
	// survivors: the partitions already share the global θlb (§VI), so a
	// single Alg. 2 pass over the merged candidate pool is equivalent to
	// per-partition passes plus a merge — and avoids exact-matching up to
	// k·partitions partition-local winners that the global top-k never
	// needs (exactly the expensive near-duplicate sets).
	postStart := time.Now()
	var survivors []survivor
	for i := range partSurv {
		survivors = append(survivors, partSurv[i]...)
	}
	llb := pqueue.NewTopK(e.opts.K)
	for _, sv := range survivors {
		llb.Update(sv.setID, sv.lb)
	}
	theta.Update(llb.Bottom())
	results := e.postproc(query, cache, survivors, llb, theta, &stats)

	if e.opts.ExactScores {
		for i, r := range results {
			if r.Verified {
				continue
			}
			// A result set is a proven top-k member, so its score is at
			// least θlb ≤ θ*k and the bounded verification can never
			// terminate early (the label sum never drops below the score).
			res := e.verify(query, cache, e.repo.Set(r.SetID), theta)
			stats.HungarianIterations += res.Iterations
			stats.FinalizeEM++
			results[i].Score = res.Score
			results[i].Verified = true
		}
		sort.Slice(results, func(i, j int) bool {
			if results[i].Score != results[j].Score {
				return results[i].Score > results[j].Score
			}
			return results[i].SetID < results[j].SetID
		})
	}
	stats.PostprocTime = time.Since(postStart)
	return results, stats
}

// materializeStream drains the token stream once, recording first-arrival
// flags and building the similarity edge cache shared by all partitions.
func (e *Engine) materializeStream(query []string) ([]streamTuple, map[string][]qEdge, int64) {
	st := index.NewStream(query, e.src, e.opts.Alpha)
	var tuples []streamTuple
	seen := make(map[string]bool)
	cache := make(map[string][]qEdge)
	var mem int64
	for {
		tup, ok := st.Next()
		if !ok {
			break
		}
		first := !seen[tup.Token]
		seen[tup.Token] = true
		tuples = append(tuples, streamTuple{qIdx: int32(tup.QIdx), token: tup.Token, sim: tup.Sim, first: first})
		cache[tup.Token] = append(cache[tup.Token], qEdge{qIdx: int32(tup.QIdx), sim: tup.Sim})
		mem += int64(len(tup.Token)) + 16 + 32 + 16 // tuple + cache entry estimate
	}
	return tuples, cache, mem
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
