package core

import (
	"context"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/sets"
)

// Engine is a Koios search engine over a fixed repository and similarity
// index. Index construction happens once in NewEngine (the paper likewise
// excludes index construction from query response time, §VIII-A3); Search
// may then be called for any number of queries and is safe for concurrent
// use by multiple goroutines.
//
// Everything downstream of NewEngine runs on interned int32 token IDs
// (DESIGN.md §3): postings are CSR arenas, the per-query edge cache is a
// slice indexed by token ID, and refinement state is a dense arena over each
// partition's sets — the refinement inner loop performs no string hashing
// and no map lookups.
type Engine struct {
	repo  *sets.Repository
	src   index.NeighborSource
	opts  Options
	parts [][]int
	invs  []*index.Inverted

	vocabN int
	// card is each set's distinct-element count, indexed by set ID.
	card []int32
	// localOf maps a set ID to its index within its (unique) partition, so
	// refinement can address the dense candidate-state arena directly from a
	// posting entry.
	localOf []int32
	// cOffs holds, per partition, the prefix word offsets of each
	// candidate's matched-token bitset inside the partition's shared bit
	// arena: candidate L owns words [cOffs[p][L], cOffs[p][L+1]).
	cOffs [][]int32
	// maxCard is the largest set cardinality per partition, which bounds
	// the iUB bucket index space min(|Q|,|C|).
	maxCard []int32
	// cardOrder holds, per partition, the partition-local candidate indices
	// sorted by descending cardinality — the lazy cut-off walks it to bound
	// the largest still-unseen set (DESIGN.md §10).
	cardOrder [][]int32
	// scratch pools the vocabulary-sized per-query buffers (first-arrival
	// bitset, edge-cache offsets) so per-query allocation scales with the
	// stream, not with the vocabulary.
	scratch sync.Pool
}

// queryScratch holds the vocabulary-sized buffers one Search needs.
type queryScratch struct {
	seen    []uint64
	offsets []int32
}

func (e *Engine) getScratch() *queryScratch {
	if s, ok := e.scratch.Get().(*queryScratch); ok {
		clear(s.seen)
		clear(s.offsets)
		return s
	}
	return &queryScratch{
		seen:    make([]uint64, (e.vocabN+63)/64),
		offsets: make([]int32, e.vocabN),
	}
}

// NewEngine builds the partition layout, one CSR inverted index per
// partition, and the dense-state addressing tables.
func NewEngine(repo *sets.Repository, src index.NeighborSource, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{repo: repo, src: src, opts: opts, vocabN: repo.VocabSize()}
	e.parts = repo.Partition(opts.Partitions, opts.PartitionSeed)
	e.invs = make([]*index.Inverted, len(e.parts))
	e.card = make([]int32, repo.Len())
	for i := 0; i < repo.Len(); i++ {
		// ElemIDs, not Elements: mapped segments (DESIGN.md §13) carry only
		// IDs, and the two are always the same length on eager repos.
		e.card[i] = int32(len(repo.Set(i).ElemIDs))
	}
	e.localOf = make([]int32, repo.Len())
	e.cOffs = make([][]int32, len(e.parts))
	e.maxCard = make([]int32, len(e.parts))
	e.cardOrder = make([][]int32, len(e.parts))
	for p, part := range e.parts {
		e.invs[p] = index.NewInvertedSubset(repo, part)
		offs := make([]int32, len(part)+1)
		order := make([]int32, len(part))
		for l, sid := range part {
			e.localOf[sid] = int32(l)
			offs[l+1] = offs[l] + (e.card[sid]+63)/64
			if e.card[sid] > e.maxCard[p] {
				e.maxCard[p] = e.card[sid]
			}
			order[l] = int32(l)
		}
		sort.Slice(order, func(i, j int) bool {
			return e.card[part[order[i]]] > e.card[part[order[j]]]
		})
		e.cOffs[p] = offs
		e.cardOrder[p] = order
	}
	return e
}

// Options returns the engine's effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }

// streamTuple is one materialized token-stream tuple. first marks the
// global first arrival of the token, i.e. the tuple carrying the token's
// maximum similarity to any query element. tokenID is -1 for the identity
// tuple of a query element occurring in no repository set.
type streamTuple struct {
	tokenID int32
	qIdx    int32
	sim     float64
	first   bool
}

// qEdge is a cached bipartite edge endpoint: query element index and
// α-thresholded similarity. The edge cache reuses every similarity computed
// during refinement for the verification matrices (§VIII-A3: "we cache the
// similarity of returned vectors ... for reuse during the initialization of
// the similarity matrix used in graph matching").
type qEdge struct {
	qIdx int32
	sim  float64
}

// edgeCache is the per-query edge cache in CSR layout, indexed by interned
// token ID: token t's edges occupy arena[offsets[t-1]:offsets[t]] (0-based
// for t = 0). Built in two flat allocations from the materialized stream —
// no per-token slices, no string keys.
//
// When the token stream was cut off before exhaustion (DESIGN.md §10), the
// CSR arena is missing every edge with similarity in [α, s_cut); comp then
// overrides edges with full lists recomputed on demand through the pure
// pair similarity — bit-identical to what the drained stream would have
// cached, because the source's retrieval is exhaustive w.r.t. that
// similarity (index.CompleteScorer).
type edgeCache struct {
	offsets []int32
	arena   []qEdge
	comp    *edgeCompleter
}

// edges returns the α-edges of a token ID. Every repository token ID is a
// valid index (set elements define the vocabulary). After a stream cut-off
// the truncated CSR prefix is bypassed entirely: every consulted token goes
// through on-demand completion.
func (c *edgeCache) edges(tid int32) []qEdge {
	if c.comp != nil {
		return c.comp.edges(tid)
	}
	lo := int32(0)
	if tid > 0 {
		lo = c.offsets[tid-1]
	}
	return c.arena[lo:c.offsets[tid]]
}

// Search runs the top-k semantic overlap search for query and returns the
// result sets in descending score order together with filter statistics.
func (e *Engine) Search(query []string) ([]Result, Stats) {
	results, stats, _ := e.SearchContext(context.Background(), query)
	return results, stats
}

// SearchContext is Search observing ctx: the refinement and post-processing
// loops poll for cancellation and the search returns ctx's error (with no
// results and partial statistics) once canceled, so abandoned queries stop
// burning CPU. The search itself runs over the engine as a single-segment
// Group; multi-segment collections build the Group themselves.
func (e *Engine) SearchContext(ctx context.Context, query []string) ([]Result, Stats, error) {
	g := &Group{Engines: []*Engine{e}}
	gres, stats, err := g.SearchContext(ctx, query)
	if err != nil {
		return nil, stats, err
	}
	results := make([]Result, len(gres))
	for i, r := range gres {
		results[i] = Result{SetID: r.Local, Score: r.Score, Verified: r.Verified}
	}
	return results, stats, nil
}

// materializeStream drains the token stream once, recording first-arrival
// flags, then builds the similarity edge cache shared by all partitions in
// CSR form with a counting pass over the materialized tuples — the eager
// pipeline (the lazy pipeline pumps the stream incrementally instead; see
// lazy.go). The tuple slice is preallocated from the stream's known size
// bound (retrieved α-neighbors plus one identity tuple per query element),
// first arrivals are tracked with a token-ID bitset, and the
// vocabulary-sized buffers come zeroed from the engine's scratch pool, so
// materialization performs no map operations and a constant number of
// stream-sized allocations. It also returns the α-neighbor retrieval count
// and the stream-side memory estimate. The returned cache aliases
// sc.offsets; the caller owns sc until it is done with the cache.
//
// live and skip implement the segmented engine's live-token semantics
// (both may be nil): tuples whose token occurs in no live set are demoted
// to out-of-vocabulary, and skip-masked query elements are never probed —
// together they make the stream identical to one an engine built only on
// the live sets would produce.
func (e *Engine) materializeStream(query []string, qids []int32, sc *queryScratch, live []uint64, skip []bool) ([]streamTuple, *edgeCache, int, int64) {
	st := index.NewStreamMasked(query, qids, e.src, e.opts.Alpha, skip)
	tuples := make([]streamTuple, 0, st.Retrieved()+len(query))
	for {
		tup, ok := st.Next()
		if !ok {
			break
		}
		tuples = append(tuples, e.noteTuple(tup, sc, live))
	}
	cache := e.buildEdgeCache(tuples, sc)
	mem := int64(cap(tuples))*24 + int64(len(cache.arena))*16 + int64(len(sc.offsets))*4 + int64(len(sc.seen))*8
	return tuples, cache, st.Retrieved(), mem
}

// drainStream finishes a cut stream into the tuple arena for edge-cache
// building only — the appended tail never reaches the refiners, and the
// cache's consumers (verification matrices, the bound replay) are
// order-insensitive within a token's edge list, so the tail is pulled in
// arbitrary order (Stream.DrainRest) without paying any ordering cost.
// Annotation continues through the same scratch; the first-arrival flags of
// tail tuples are meaningless, but nothing reads them (only refinement
// does, and it never sees the tail). The cache CONTENT is bit-identical to
// a full eager materialization.
func (e *Engine) drainStream(st *index.Stream, tuples []streamTuple, sc *queryScratch, live []uint64) []streamTuple {
	st.DrainRest(func(tup index.Tuple) {
		tuples = append(tuples, e.noteTuple(tup, sc, live))
	})
	return tuples
}

// noteTuple annotates one raw stream tuple: vocabulary demotion, global
// first-arrival tracking (through sc.seen), and per-token edge counting
// (through sc.offsets). Shared by the eager drain above and the lazy block
// pump, so both consume bit-identical tuple sequences.
func (e *Engine) noteTuple(tup index.Tuple, sc *queryScratch, live []uint64) streamTuple {
	id := tup.TokenID
	if int(id) >= e.vocabN {
		// A source built over a superset of the repository vocabulary
		// (e.g. a shared discovery source) annotates IDs past the
		// dictionary; such tokens occur in no set, so they are
		// out-of-vocabulary here.
		id = -1
	}
	if id >= 0 && live != nil && live[id>>6]&(1<<(uint(id)&63)) == 0 {
		// The token survives only in deleted sets: out of vocabulary,
		// exactly as if the index had been rebuilt without them.
		id = -1
	}
	first := true
	if id >= 0 {
		w, bit := id>>6, uint64(1)<<(uint(id)&63)
		first = sc.seen[w]&bit == 0
		sc.seen[w] |= bit
		sc.offsets[id]++
	}
	return streamTuple{tokenID: id, qIdx: int32(tup.QIdx), sim: tup.Sim, first: first}
}

// buildEdgeCache turns the consumed tuple prefix into the CSR edge cache:
// prefix-sum the per-token counts in sc.offsets into fill cursors, fill the
// arena, and let the cursors land on the end offsets the accessor expects.
// The cache aliases sc.offsets; the caller owns sc until done with it.
func (e *Engine) buildEdgeCache(tuples []streamTuple, sc *queryScratch) *edgeCache {
	offsets := sc.offsets
	total := int32(0)
	for t, n := range offsets {
		offsets[t] = total
		total += n
	}
	arena := make([]qEdge, total)
	for i := range tuples {
		tup := &tuples[i]
		if tup.tokenID < 0 {
			continue
		}
		at := offsets[tup.tokenID]
		arena[at] = qEdge{qIdx: tup.qIdx, sim: tup.sim}
		offsets[tup.tokenID] = at + 1
	}
	return &edgeCache{offsets: offsets, arena: arena}
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
