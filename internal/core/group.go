package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/pqueue"
)

// Group is a consistent snapshot of one or more engine segments searched as
// a single logical collection (DESIGN.md §4). The segments must share one
// token-ID space (their repositories intern into the same dictionary, or
// there is exactly one segment) and uniform search options; the newest
// segment — the one with the largest vocabulary horizon — supplies the
// token stream, every segment's partitions refine the same materialized
// tuples against their own CSR postings under one shared global θlb, and a
// single post-processing pass runs over the union of all survivors.
//
// Dead carries one optional tombstone bitset per segment, indexed by
// segment-local set ID: tombstoned sets are skipped at candidate creation,
// so a deleted set never contributes bounds, never enters the top-k lists,
// and is never verified. A Group is immutable; searching it takes no locks,
// which is what keeps Search wait-free with respect to writers.
type Group struct {
	// Engines are the segment engines, oldest first. Result ordering ties
	// break toward older segments (then lower local IDs), which preserves
	// insertion order across the whole group.
	Engines []*Engine
	// Dead[i] is segment i's tombstone bitset (nil when segment i has no
	// tombstones). A shorter slice than Engines means the missing tails
	// have none.
	Dead [][]uint64
	// LiveTokens, when non-nil, is the bitset of token IDs occurring in at
	// least one live set. Tokens outside it (they survive only in deleted
	// sets — the shared dictionary is append-only) are treated as out of
	// vocabulary: their stream tuples are demoted to inert identity-only
	// tuples, which makes the search byte-identical to an engine built
	// from scratch on the live sets.
	LiveTokens []uint64
	// ProbeLiveOnly additionally skips the retrieval probe for query
	// elements whose token is not live — set when the source is
	// query-vocabulary-bound (index.QueryVocabBound): a from-scratch
	// vector index would not cover such elements, while a function-scan
	// source scores any query string and must still be probed.
	ProbeLiveOnly bool
}

// GroupResult is one entry of a group search's top-k result: the set is
// identified by its segment index and segment-local set ID.
type GroupResult struct {
	Seg      int
	Local    int
	Score    float64
	Verified bool
}

// SearchBatch answers a slice of queries against this one immutable
// snapshot, returning per-query results and statistics in input order. A
// Group is a fixed collection state, so the batch is exactly equivalent to
// calling SearchContext once per query — same results, same scores, byte
// for byte — while amortizing the snapshot across the whole batch (a caller
// holding a Group for the batch observes no concurrent mutations between
// queries). Queries run sequentially; concurrency across queries belongs to
// the caller (the segment manager's SearchBatch and the server worker pool
// fan out above this level). On cancellation the batch stops at the current
// query and returns ctx's error.
func (g *Group) SearchBatch(ctx context.Context, queries [][]string) ([][]GroupResult, []Stats, error) {
	results := make([][]GroupResult, len(queries))
	stats := make([]Stats, len(queries))
	for i, q := range queries {
		res, st, err := g.SearchContext(ctx, q)
		stats[i] = st
		if err != nil {
			return nil, stats, err
		}
		results[i] = res
	}
	return results, stats, nil
}

// lead returns the engine with the largest vocabulary horizon — the newest
// segment, whose repository view covers every token any segment indexed.
func (g *Group) lead() *Engine {
	lead := g.Engines[0]
	for _, e := range g.Engines[1:] {
		if e.vocabN > lead.vocabN {
			lead = e
		}
	}
	return lead
}

// locate resolves a group-wide dense set ID (base[seg]+local) back to its
// segment engine, segment index, and local set ID.
func (g *Group) locate(gid int, base []int) (*Engine, int, int) {
	for si := len(g.Engines) - 1; si > 0; si-- {
		if gid >= base[si] {
			return g.Engines[si], si, gid - base[si]
		}
	}
	return g.Engines[0], 0, gid
}

// SearchContext runs the top-k semantic overlap search for query across the
// group's segments and returns the result sets in descending score order
// together with aggregated filter statistics. The search observes ctx at
// phase boundaries and inside the refinement and post-processing loops; on
// cancellation it returns ctx's error with partial statistics and no
// results.
func (g *Group) SearchContext(ctx context.Context, query []string) ([]GroupResult, Stats, error) {
	var stats Stats
	stats.Segments = len(g.Engines)
	query = dedupStrings(query)
	if len(query) == 0 || len(g.Engines) == 0 {
		return nil, stats, ctx.Err()
	}
	lead := g.lead()
	opts := g.Engines[0].opts
	qids := lead.repo.TokenIDs(query)
	var skip []bool
	if g.LiveTokens != nil {
		// Query elements whose token survives only in deleted sets are out
		// of vocabulary: identity tuple with an unresolved ID (and, on
		// vocabulary-bound sources, no retrieval probe) — exactly what an
		// engine that never saw those sets would do.
		for i, id := range qids {
			live := id >= 0 && g.LiveTokens[id>>6]&(1<<(uint(id)&63)) != 0
			if live {
				continue
			}
			// Not live: either dead (id ≥ 0, bit clear) or unresolvable in the
			// lead repository (id -1). The latter still needs the probe gate —
			// the shared dictionary can hold tokens beyond every live segment's
			// vocabulary horizon (e.g. rows lost to a quarantined segment), and
			// a vocabulary-bound source built over that dictionary would happily
			// retrieve neighbors a from-scratch index could never produce.
			if g.ProbeLiveOnly {
				if skip == nil {
					skip = make([]bool, len(query))
				}
				skip[i] = true
			}
			qids[i] = -1
		}
	}

	refineStart := time.Now()
	sc := lead.getScratch()
	defer lead.scratch.Put(sc) // cache.offsets aliases sc; released on return

	// base turns (segment, local set ID) into one dense group-wide ID space
	// ordered by segment age then local position — insertion order.
	base := make([]int, len(g.Engines)+1)
	for i, e := range g.Engines {
		base[i+1] = base[i] + e.repo.Len()
	}

	// Every partition of every segment refines the same shared tuple arena;
	// the global θlb is shared across all of them (§VI, extended across
	// segments). The lazy pipeline (DESIGN.md §10) pumps the stream into the
	// arena block by block and cuts it once the termination condition holds;
	// the eager pipeline — searches that disabled the cut-off or the iUB
	// filter it builds on — materializes everything first.
	theta := &atomicMax{}
	type chunk struct {
		stats Stats
		r     *partRefiner
		surv  []survivor
	}
	chunks := make([][]chunk, len(g.Engines))
	refiners := make([][]*partRefiner, len(g.Engines))
	for si, e := range g.Engines {
		chunks[si] = make([]chunk, len(e.parts))
		refiners[si] = make([]*partRefiner, len(e.parts))
		var dead []uint64
		if si < len(g.Dead) {
			dead = g.Dead[si]
		}
		for p := range e.parts {
			c := &chunks[si][p]
			c.r = e.newPartRefiner(len(query), p, theta, &c.stats, dead)
			refiners[si][p] = c.r
		}
	}

	var (
		tuples []streamTuple
		cache  *edgeCache
		comp   *edgeCompleter
		cut    bool
	)
	if scorer, lazy := g.lazyEligible(opts); lazy {
		st := index.NewLazyStream(query, qids, lead.src, opts.Alpha, skip)
		var cutLevel float64
		var at cutPoint
		var ok bool
		tuples, cut, cutLevel, at, ok = g.pumpLazy(ctx, st, refiners, theta, lead, sc, len(query), opts.K)
		stats.StreamTuples = len(tuples)
		stats.StreamCut = cut
		stats.StreamCutLevel = cutLevel
		if !ok {
			return nil, stats, ctx.Err()
		}
		thetaCut := theta.Load()
		if cut && scorer == nil {
			// Stream-drain edge completion: finish the stream into the
			// arena for cache building only — the refiners never see the
			// tail, and it arrives unordered. For the scan-style sources
			// every remaining neighbor was computed during the probes
			// anyway, so this costs appends, not similarity evaluations or
			// sorting.
			tuples = lead.drainStream(st, tuples, sc, g.LiveTokens)
		}
		stats.StreamRetrieved = st.Retrieved()
		cache = lead.buildEdgeCache(tuples, sc)
		stats.MemStreamBytes = int64(cap(tuples))*24 + int64(len(cache.arena))*16 +
			int64(len(sc.offsets))*4 + int64(len(sc.seen))*8
		if cut && scorer != nil {
			// Scored edge completion: survivors' edge lists are recomputed
			// on demand through the pure pair similarity — every evaluation
			// a cross-query cache hit in this configuration — so the stream
			// tail is never even retrieved.
			comp = newEdgeCompleter(lead.repo, query, qids, skip, scorer, opts.Alpha)
			cache.comp = comp
		}
		// Survivors: on a cut, reconstruct the eager outcome — phase one
		// replays every alive candidate's full-stream bounds and rebuilds
		// the final global θlb through the per-partition Llb lists; phase
		// two applies the eager drain filter under that final θlb.
		// Without a cut the stream was exhausted, so the normal drain IS
		// the eager path.
		if cut {
			var wg sync.WaitGroup
			for si := range g.Engines {
				for p := range chunks[si] {
					c := &chunks[si][p]
					wg.Add(1)
					go func(c *chunk) {
						defer wg.Done()
						c.surv = c.r.replayPool(cache.edges, qids, len(query), cutLevel, thetaCut, at)
					}(c)
				}
			}
			wg.Wait()
			finalTheta := theta.Load()
			for si := range g.Engines {
				for p := range chunks[si] {
					c := &chunks[si][p]
					c.surv = c.r.filterPool(c.surv, finalTheta)
				}
			}
		} else {
			for si := range g.Engines {
				for p := range chunks[si] {
					c := &chunks[si][p]
					c.surv = c.r.drain()
				}
			}
		}
	} else {
		var streamMem int64
		var retrieved int
		tuples, cache, retrieved, streamMem = lead.materializeStream(query, qids, sc, g.LiveTokens, skip)
		stats.StreamTuples = len(tuples)
		stats.StreamRetrieved = retrieved
		stats.MemStreamBytes = streamMem
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		var wg sync.WaitGroup
		for si := range g.Engines {
			for p := range chunks[si] {
				wg.Add(1)
				go func(c *chunk) {
					defer wg.Done()
					if c.r.consume(ctx, tuples, 0) {
						c.surv = c.r.drain()
					}
				}(&chunks[si][p])
			}
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	var survivors []survivor
	for si := range chunks {
		for p := range chunks[si] {
			stats.add(&chunks[si][p].stats)
			for _, sv := range chunks[si][p].surv {
				sv.setID += base[si]
				survivors = append(survivors, sv)
			}
		}
	}
	stats.RefineTime = time.Since(refineStart)

	// Post-processing runs once over the union of all segments' and
	// partitions' survivors: they already share the global θlb, so a single
	// Alg. 2 pass over the merged candidate pool is equivalent to per-part
	// passes plus a merge — and avoids exact-matching up to k·parts
	// partition-local winners that the global top-k never needs.
	postStart := time.Now()
	llb := pqueue.NewTopK(opts.K)
	for _, sv := range survivors {
		llb.Update(sv.setID, sv.lb)
	}
	theta.Update(llb.Bottom())
	results, err := g.postproc(ctx, len(query), cache, survivors, llb, theta, &stats, base)
	if err != nil {
		return nil, stats, err
	}

	if opts.ExactScores {
		for i, r := range results {
			if r.Verified {
				continue
			}
			// A result set is a proven top-k member, so its score is at
			// least θlb ≤ θ*k and the bounded verification can never
			// terminate early (the label sum never drops below the score).
			eng, _, local := g.locate(r.SetID, base)
			res := eng.verify(len(query), cache, eng.repo.Set(local), theta)
			stats.HungarianIterations += res.Iterations
			stats.VerifyCalls++
			if res.Skipped {
				stats.HungarianSkipped++
			}
			stats.FinalizeEM++
			results[i].Score = res.Score
			results[i].Verified = true
		}
		sort.Slice(results, func(i, j int) bool {
			if results[i].Score != results[j].Score {
				return results[i].Score > results[j].Score
			}
			return results[i].SetID < results[j].SetID
		})
	}
	stats.PostprocTime = time.Since(postStart)

	out := make([]GroupResult, len(results))
	for i, r := range results {
		_, seg, local := g.locate(r.SetID, base)
		out[i] = GroupResult{Seg: seg, Local: local, Score: r.Score, Verified: r.Verified}
	}
	return out, stats, nil
}
