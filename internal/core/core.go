package core
