package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
)

// This file is the equivalence suite for the lazy token stream (DESIGN.md
// §10): the cut-off pipeline must return byte-identical results — same
// sets, same scores, same Verified flags — to the eager pipeline on every
// dataset kind and across randomized cut points. The cut reconstruction
// also reproduces the eager post-processing exactly (same survivors, same
// bounds, same final θlb), so the post-processing filter counters must
// match too; only the refinement-side counters (Candidates, IUBPruned,
// StreamTuples) legitimately shrink.

// searchBoth runs the same query through a lazy and an eager engine and
// fails the test on any observable divergence.
func searchBoth(t *testing.T, lazyEng, eagerEng *Engine, query []string, label string) (Stats, Stats) {
	t.Helper()
	lres, lst := lazyEng.Search(query)
	eres, est := eagerEng.Search(query)
	if fmt.Sprint(lres) != fmt.Sprint(eres) {
		t.Fatalf("%s: results diverge\nlazy:  %v\neager: %v", label, lres, eres)
	}
	if lst.NoEM != est.NoEM || lst.EMFull != est.EMFull || lst.EMEarly != est.EMEarly {
		t.Fatalf("%s: post-processing stats diverge\nlazy:  NoEM=%d EMFull=%d EMEarly=%d\neager: NoEM=%d EMFull=%d EMEarly=%d",
			label, lst.NoEM, lst.EMFull, lst.EMEarly, est.NoEM, est.EMFull, est.EMEarly)
	}
	if lst.StreamTuples > est.StreamTuples {
		t.Fatalf("%s: lazy consumed more tuples (%d) than eager (%d)", label, lst.StreamTuples, est.StreamTuples)
	}
	if !lst.StreamCut && lst.StreamTuples != est.StreamTuples {
		t.Fatalf("%s: no cut but consumption differs: lazy %d vs eager %d", label, lst.StreamTuples, est.StreamTuples)
	}
	return lst, est
}

// TestLazyMatchesEagerAllKinds compares the two pipelines over every
// synthetic dataset kind, with and without ExactScores, and requires that
// the cut-off actually fires somewhere — a lazy pipeline that never cuts
// would pass equivalence vacuously.
func TestLazyMatchesEagerAllKinds(t *testing.T) {
	totalCuts := 0
	for _, kind := range datagen.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			ds := datagen.GenerateDefault(kind, 0.05)
			src := index.NewExact(ds.Repo.Vocabulary(), ds.Model.Vector)
			queries := datagen.NewBenchmark(ds, 17).Queries
			if len(queries) > 10 {
				queries = queries[:10]
			}
			for _, withExact := range []bool{false, true} {
				lazyEng := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.8, ExactScores: withExact})
				eagerEng := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.8, ExactScores: withExact, DisableLazy: true})
				for qi, q := range queries {
					lst, est := searchBoth(t, lazyEng, eagerEng, q.Elements,
						fmt.Sprintf("%s exact=%v query %d", kind, withExact, qi))
					if lst.StreamCut {
						totalCuts++
						if lst.StreamCutLevel <= 0 {
							t.Fatalf("query %d: cut without a level", qi)
						}
						if lst.StreamTuples >= est.StreamTuples {
							t.Fatalf("query %d: cut fired but no tuple savings (%d vs %d)",
								qi, lst.StreamTuples, est.StreamTuples)
						}
					}
				}
			}
		})
	}
	if totalCuts == 0 {
		t.Fatal("the cut-off never fired on any kind — the lazy pipeline is untested and useless")
	}
}

// TestLazyCutRandomPrefixes fuzzes the cut point: randomized LazyBlock
// sizes move the epoch barriers, so the cut condition is evaluated (and the
// cut taken) at randomized stream prefixes — the earliest barrier at which
// it holds. Every cut point must reconstruct the identical eager outcome.
// Random instances vary k, α, and the out-of-vocabulary rate.
func TestLazyCutRandomPrefixes(t *testing.T) {
	cuts := 0
	for seed := int64(500); seed < 560; seed++ {
		repo, model, query := randomInstance(seed)
		src := index.NewFuncIndex(repo.Vocabulary(), model)
		rng := rand.New(rand.NewSource(seed * 7))
		opts := Options{
			K:         1 + int(seed%7),
			Alpha:     0.55 + 0.1*float64(seed%4),
			LazyBlock: 1 + rng.Intn(64),
		}
		eagerOpts := opts
		eagerOpts.DisableLazy = true
		lst, _ := searchBoth(t, NewEngine(repo, src, opts), NewEngine(repo, src, eagerOpts),
			query, fmt.Sprintf("seed %d block %d", seed, opts.LazyBlock))
		if lst.StreamCut {
			cuts++
		}
	}
	if cuts == 0 {
		t.Fatal("no random instance cut the stream — fuzz is not exercising the reconstruction")
	}
}

// TestLazyApproximateSourceEquivalence pins the cut-off's contract for
// approximate sources: an IVF index cannot complete edge lists through a
// pair scorer (index.ScoredCompletion refuses — recomputing would invent
// edges the index never retrieved), so a cut search must fall back to
// stream-drain completion, which re-emits the source's own retrieval and
// therefore reproduces that source's eager results byte for byte. The
// configuration is chosen so cuts actually fire.
func TestLazyApproximateSourceEquivalence(t *testing.T) {
	ds := datagen.GenerateDefault(datagen.Twitter, 0.03)
	src := index.NewIVF(ds.Repo.Vocabulary(), ds.Model.Vector, 8, 4, 1)
	if _, ok := index.ScoredCompletion(src); ok {
		t.Fatal("IVF must not offer scored completion")
	}
	lazyEng := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.6})
	eagerEng := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.6, DisableLazy: true})
	cuts := 0
	for qi, q := range datagen.NewBenchmark(ds, 17).Queries {
		lres, lst := lazyEng.Search(q.Elements)
		eres, _ := eagerEng.Search(q.Elements)
		if fmt.Sprint(lres) != fmt.Sprint(eres) {
			t.Fatalf("query %d: lazy diverges from eager over the approximate source\nlazy:  %v\neager: %v",
				qi, lres, eres)
		}
		if lst.StreamCut {
			cuts++
		}
	}
	if cuts == 0 {
		t.Fatal("no cut fired over the approximate source — the drain fallback is untested")
	}
}

// TestLazyMultiPartition runs the cut-off with several partitions sharing
// the global θlb: results must match the eager pipeline exactly (the pool
// reconstruction rebuilds θlb across all partitions before filtering).
func TestLazyMultiPartition(t *testing.T) {
	ds := datagen.GenerateDefault(datagen.OpenData, 0.05)
	src := index.NewExact(ds.Repo.Vocabulary(), ds.Model.Vector)
	queries := datagen.NewBenchmark(ds, 17).Queries[:8]
	cuts := 0
	for parts := 1; parts <= 4; parts += 3 {
		lazyEng := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.8, Partitions: parts})
		eagerEng := NewEngine(ds.Repo, src, Options{K: 10, Alpha: 0.8, Partitions: parts, DisableLazy: true})
		for qi, q := range queries {
			lres, lst := lazyEng.Search(q.Elements)
			eres, _ := eagerEng.Search(q.Elements)
			if fmt.Sprint(lres) != fmt.Sprint(eres) {
				t.Fatalf("parts=%d query %d: results diverge\nlazy:  %v\neager: %v", parts, qi, lres, eres)
			}
			if lst.StreamCut {
				cuts++
			}
		}
	}
	if cuts == 0 {
		t.Fatal("no cut fired across partition counts")
	}
}
