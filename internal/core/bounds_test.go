package core

import (
	"context"
	"testing"

	"repro/internal/index"
	"repro/internal/sets"
)

func newTestRepo(t *testing.T, elems [][]string) *sets.Repository {
	t.Helper()
	raw := make([]sets.Set, len(elems))
	for i, e := range elems {
		raw[i] = sets.Set{Elements: e}
	}
	return sets.NewRepository(raw)
}

// TestRefinementBoundsSound is the white-box test of the corrected iUB
// bound (DESIGN.md §2) and the iLB greedy bound: after refinement, every
// candidate's interval [lb, ub] must contain its exact semantic overlap.
// Filters are disabled so every candidate survives to be checked.
func TestRefinementBoundsSound(t *testing.T) {
	for seed := int64(200); seed < 260; seed++ {
		repo, model, query := randomInstance(seed)
		query = dedupStrings(query)
		src := index.NewFuncIndex(repo.Vocabulary(), model)
		alpha := 0.55 + float64(seed%4)*0.1
		eng := NewEngine(repo, src, Options{K: 3, Alpha: alpha, DisableIUB: true})

		tuples, _, _, _ := eng.materializeStream(query, repo.TokenIDs(query), eng.getScratch(), nil, nil)
		theta := &atomicMax{}
		var stats Stats
		survivors := eng.refinePartition(context.Background(), len(query), tuples, 0, theta, &stats, nil)

		if len(survivors) != stats.Candidates {
			t.Fatalf("seed %d: %d survivors, %d candidates (filters disabled)", seed, len(survivors), stats.Candidates)
		}
		for _, sv := range survivors {
			so := exactSO(query, repo.Set(sv.setID), model, alpha)
			if sv.lb > so+1e-9 {
				t.Fatalf("seed %d set %d: lb %v exceeds exact SO %v", seed, sv.setID, sv.lb, so)
			}
			if sv.ub < so-1e-9 {
				t.Fatalf("seed %d set %d: ub %v below exact SO %v (unsound upper bound)", seed, sv.setID, sv.ub, so)
			}
			// The greedy lower bound is a ½-approximation (Lemma 3).
			if sv.lb < so/2-1e-9 {
				t.Fatalf("seed %d set %d: lb %v below half of SO %v", seed, sv.setID, sv.lb, so)
			}
		}
	}
}

// TestLemma6Counterexample reproduces DESIGN.md §2's instance: the literal
// Lemma 6 bound (greedy score + remaining·s) drops below the exact overlap,
// while the corrected bound implemented here stays above it.
func TestLemma6Counterexample(t *testing.T) {
	ps := newPairSim()
	ps.set("q1", "c1", 0.9)
	ps.set("q1", "c2", 0.899)
	ps.set("q2", "c1", 0.899)
	// Padding vocabulary so the stream continues below 0.899 (the paper
	// bound degrades as s drops; the corrected bound must not).
	ps.set("q2", "pad", 0.6)

	repo := newTestRepo(t, [][]string{
		{"c1", "c2"},
		{"pad"},
	})
	src := index.NewFuncIndex(repo.Vocabulary(), ps)
	eng := NewEngine(repo, src, Options{K: 1, Alpha: 0.5, DisableIUB: true})

	query := []string{"q1", "q2"}
	tuples, _, _, _ := eng.materializeStream(query, repo.TokenIDs(query), eng.getScratch(), nil, nil)
	theta := &atomicMax{}
	var stats Stats
	survivors := eng.refinePartition(context.Background(), len(query), tuples, 0, theta, &stats, nil)

	exact := exactSO(query, repo.Set(0), ps, 0.5) // 0.899 + 0.899
	if exact < 1.797 || exact > 1.799 {
		t.Fatalf("exact SO = %v, want 1.798", exact)
	}
	var c0 *survivor
	for i := range survivors {
		if survivors[i].setID == 0 {
			c0 = &survivors[i]
		}
	}
	if c0 == nil {
		t.Fatal("set 0 not a survivor")
	}
	if c0.ub < exact-1e-9 {
		t.Fatalf("corrected iUB %v below exact SO %v — the Lemma 6 flaw leaked in", c0.ub, exact)
	}
	// The literal Lemma 6 value at stream end: greedy l=1, S=0.9, s=0.6 →
	// 0.9 + min(1,1)·0.6 = 1.5 < 1.798. Confirm the flaw is real (this is
	// an assertion about the paper, not about our code).
	literal := 0.9 + 1*0.6
	if literal >= exact {
		t.Fatalf("counterexample broken: literal bound %v ≥ exact %v", literal, exact)
	}
}

// TestStreamFirstFlags: the materialized stream marks exactly the first
// arrival of each token, which the UB accounting depends on.
func TestStreamFirstFlags(t *testing.T) {
	repo, model, query := randomInstance(77)
	query = dedupStrings(query)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	eng := NewEngine(repo, src, Options{K: 3, Alpha: 0.6})
	tuples, cache, _, _ := eng.materializeStream(query, repo.TokenIDs(query), eng.getScratch(), nil, nil)
	seen := map[int32]bool{}
	inVocab := 0
	for i, tup := range tuples {
		if tup.tokenID >= 0 {
			inVocab++
			if tup.first != !seen[tup.tokenID] {
				t.Fatalf("tuple %d: first=%v but seen=%v", i, tup.first, seen[tup.tokenID])
			}
			seen[tup.tokenID] = true
		} else if !tup.first {
			// An out-of-vocabulary query element streams exactly once (its
			// identity tuple), so it is always a first arrival.
			t.Fatalf("tuple %d: OOV identity tuple not marked first", i)
		}
		if i > 0 && tup.sim > tuples[i-1].sim+1e-9 {
			t.Fatal("materialized stream not descending")
		}
	}
	// Cache completeness: one entry per in-vocabulary tuple (tokens outside
	// the repository vocabulary occur in no set, so verification matrices
	// never look them up).
	if total := len(cache.arena); total != inVocab {
		t.Fatalf("cache has %d edges, stream had %d in-vocabulary tuples", total, inVocab)
	}
	for tid := int32(0); tid < int32(repo.VocabSize()); tid++ {
		for _, ed := range cache.edges(tid) {
			if int(ed.qIdx) >= len(query) {
				t.Fatalf("token %d: edge with out-of-range query index %d", tid, ed.qIdx)
			}
		}
	}
}
