package core

import (
	"context"
	"sort"
	"sync"

	"repro/internal/matching"
	"repro/internal/pqueue"
)

// ubEntry orders the post-processing priority queue Qub by upper bound.
type ubEntry struct {
	ub  float64
	sid int
}

func ubMore(a, b ubEntry) bool {
	if a.ub != b.ub {
		return a.ub > b.ub
	}
	return a.sid < b.sid
}

// postproc runs Algorithm 2 over the refinement survivors (merged across
// all partitions and segments — they already share the global θlb).
// Survivor set IDs are group-wide dense IDs (base[seg]+local); locate
// resolves them back to a segment engine for verification. It maintains
//
//   - Lub, the running top-k list by upper bound (its bottom is θub);
//   - Qub, a priority queue of the remaining sets by upper bound;
//   - Llb (rebuilt from survivor lower bounds), whose bottom feeds the
//     global θlb as verifications complete.
//
// Invariant: every alive set outside Lub has an upper bound no larger than
// any score stored in Lub. Lub.Bottom() therefore equals the k-th largest
// upper bound over all alive sets, which is what Lemma 7's No-EM test
// requires.
//
// ctx is polled once per round of the outer loop; on cancellation postproc
// returns ctx's error (in-flight verifications of the current round finish
// first — they are bounded by the label-sum filter).
func (g *Group) postproc(ctx context.Context, qN int, cache *edgeCache, survivors []survivor, llb *pqueue.TopK, theta *atomicMax, stats *Stats, base []int) ([]Result, error) {
	opts := g.Engines[0].opts
	verifyGid := func(gid int) matching.Result {
		eng, _, local := g.locate(gid, base)
		return eng.verify(qN, cache, eng.repo.Set(local), theta)
	}
	k := opts.K
	ub := make(map[int]float64, len(survivors))
	lb := make(map[int]float64, len(survivors))
	verified := make(map[int]float64)
	checked := make(map[int]bool)
	dropped := make(map[int]bool)

	lub := pqueue.NewTopK(k)
	qub := pqueue.NewHeap[ubEntry](ubMore)
	for _, sv := range survivors {
		ub[sv.setID] = sv.ub
		lb[sv.setID] = sv.lb
		qub.Push(ubEntry{ub: sv.ub, sid: sv.setID})
	}
	stats.MemPostprocBytes += int64(len(survivors))*96 + int64(k)*48

	refill := func() {
		for lub.Len() < k && qub.Len() > 0 {
			top := qub.Pop()
			if dropped[top.sid] || lub.Contains(top.sid) || top.ub != ub[top.sid] {
				continue // dropped or stale entry
			}
			if t := theta.Load(); top.ub < t-pruneEps {
				dropped[top.sid] = true // lazy UB prune, certified by ub < θlb
				continue
			}
			lub.Update(top.sid, top.ub)
		}
	}

	apply := func(sid int, res matching.Result) {
		stats.HungarianIterations += res.Iterations
		stats.VerifyCalls++
		if res.Skipped {
			stats.HungarianSkipped++
		}
		if res.Pruned {
			// Label sum fell below θlb: SO(sid) < θlb ≤ θ*k (Lemma 8).
			stats.EMEarly++
			lub.Remove(sid)
			dropped[sid] = true
			return
		}
		stats.EMFull++
		so := res.Score
		verified[sid] = so
		checked[sid] = true
		lb[sid] = so
		if llb.Update(sid, so) {
			theta.Update(llb.Bottom())
		}
		// Re-queue with the exact score; refill decides whether it still
		// belongs to Lub (Alg. 2 lines 10–15).
		lub.Remove(sid)
		ub[sid] = so
		qub.Push(ubEntry{ub: so, sid: sid})
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		refill()
		// Cheap passes first: lazy UB pruning of Lub members and the No-EM
		// admission test (Lemma 7). Restart the scan after any mutation so
		// θub is re-read consistently.
		mutated := false
		keys := lub.Keys()
		sort.Ints(keys)
		t := theta.Load()
		for _, key := range keys {
			if ub[key] < t-pruneEps {
				lub.Remove(key)
				dropped[key] = true
				mutated = true
				continue
			}
			if checked[key] {
				continue
			}
			// When Lub is not full after refill, Qub is empty: every alive
			// candidate is already in Lub and is part of the result.
			if !lub.Full() || (!opts.DisableNoEM && lb[key] >= lub.Bottom()) {
				checked[key] = true
				mutated = true
			}
		}
		if mutated {
			continue
		}
		pending := make([]int, 0, k)
		for _, key := range lub.Keys() {
			if !checked[key] {
				pending = append(pending, key)
			}
		}
		if len(pending) == 0 {
			break
		}
		// Verify the highest-upper-bound sets first ("sets with high upper
		// bounds have the potential for high semantic overlaps", §VI).
		sort.Slice(pending, func(i, j int) bool {
			if ub[pending[i]] != ub[pending[j]] {
				return ub[pending[i]] > ub[pending[j]]
			}
			return pending[i] < pending[j]
		})
		if len(pending) > opts.Workers {
			pending = pending[:opts.Workers]
		}
		if len(pending) == 1 {
			sid := pending[0]
			apply(sid, verifyGid(sid))
			continue
		}
		// Parallel verification with a shared, live θlb: results are applied
		// as they complete, so a finished matching can raise θlb and
		// early-terminate its in-flight peers (§VI).
		type vres struct {
			sid int
			res matching.Result
		}
		ch := make(chan vres, len(pending))
		var wg sync.WaitGroup
		for _, sid := range pending {
			wg.Add(1)
			go func(sid int) {
				defer wg.Done()
				ch <- vres{sid: sid, res: verifyGid(sid)}
			}(sid)
		}
		go func() { wg.Wait(); close(ch) }()
		for v := range ch {
			apply(v.sid, v.res)
		}
	}

	// Every survivor that never entered a graph matching was handled by the
	// No-EM side of post-processing (admitted by Lemma 7 or pruned by the
	// lazy UB check).
	stats.NoEM += len(survivors) - stats.EMFull - stats.EMEarly

	keys := lub.Keys()
	sort.Ints(keys)
	out := make([]Result, 0, len(keys))
	for _, key := range keys {
		if so, ok := verified[key]; ok {
			out = append(out, Result{SetID: key, Score: so, Verified: true})
		} else {
			out = append(out, Result{SetID: key, Score: lb[key], Verified: false})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].SetID < out[j].SetID
	})
	return out, nil
}
