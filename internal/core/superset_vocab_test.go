package core

import (
	"testing"

	"repro/internal/index"
	"repro/internal/sets"
)

func TestSupersetVocabSourceDoesNotPanic(t *testing.T) {
	repo := sets.NewRepository([]sets.Set{{Elements: []string{"aa", "bb"}}})
	ps := newPairSim()
	ps.set("qq", "ext", 0.9)
	src := index.NewFuncIndex(append(append([]string{}, repo.Vocabulary()...), "ext"), ps)
	eng := NewEngine(repo, src, Options{K: 2, Alpha: 0.8})
	results, _ := eng.Search([]string{"qq", "aa"})
	if len(results) != 1 || results[0].Score != 1 {
		t.Fatalf("results = %+v, want set 0 at score 1", results)
	}
}
