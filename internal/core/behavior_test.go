package core

import (
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/sets"
)

// TestOOVIdentityMatching: query elements the similarity index cannot see
// must still contribute exact matches (the §V out-of-vocabulary rule).
func TestOOVIdentityMatching(t *testing.T) {
	repo := sets.NewRepository([]sets.Set{
		{Name: "has-oov", Elements: []string{"oov-token-1", "oov-token-2", "known"}},
		{Name: "no-oov", Elements: []string{"known", "other"}},
	})
	// A similarity that knows nothing: only identity matches are possible.
	ps := newPairSim()
	src := index.NewFuncIndex(repo.Vocabulary(), ps)
	eng := NewEngine(repo, src, Options{K: 2, Alpha: 0.8, ExactScores: true})
	results, _ := eng.Search([]string{"oov-token-1", "oov-token-2", "missing"})
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1 (only has-oov overlaps)", len(results))
	}
	if results[0].SetID != 0 || math.Abs(results[0].Score-2) > tol {
		t.Fatalf("result = %+v, want set 0 with score 2", results[0])
	}
}

// TestNoEMSkipsMatchings: an instance where bounds close (lb = ub for all
// candidates, because the greedy matching is conflict-free) must admit the
// result without any exact matching when the No-EM filter is on.
func TestNoEMSkipsMatchings(t *testing.T) {
	// Disjoint identical copies: every candidate's semantic overlap equals
	// its vanilla overlap, so lb = ub after refinement.
	raw := []sets.Set{
		{Elements: []string{"a", "b", "c"}},
		{Elements: []string{"a", "b"}},
		{Elements: []string{"c"}},
		{Elements: []string{"d", "e"}},
	}
	repo := sets.NewRepository(raw)
	ps := newPairSim()
	src := index.NewFuncIndex(repo.Vocabulary(), ps)
	eng := NewEngine(repo, src, Options{K: 2, Alpha: 0.8})
	results, stats := eng.Search([]string{"a", "b", "c"})
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if stats.EMFull != 0 || stats.EMEarly != 0 {
		t.Fatalf("exact matchings ran despite closed bounds: %+v", stats)
	}
	if results[0].Score != 3 || results[1].Score != 2 {
		t.Fatalf("scores = %v, %v", results[0].Score, results[1].Score)
	}
	if results[0].Verified {
		t.Fatal("No-EM result should be unverified (score is the proven lower bound)")
	}
}

// TestEarlyTerminationFires: build an instance with one dominant set and
// many large-but-weak sets whose verification should abort early.
func TestEarlyTerminationFires(t *testing.T) {
	ps := newPairSim()
	var raw []sets.Set
	// Dominant set: exact copy of the query.
	query := []string{"q0", "q1", "q2", "q3", "q4", "q5"}
	raw = append(raw, sets.Set{Name: "dominant", Elements: query})
	// Weak sets: every element similar to exactly one query element with a
	// conflicting structure so greedy lb stays low but ub is moderate.
	for s := 0; s < 6; s++ {
		elems := make([]string, 8)
		for e := range elems {
			tok := token(s, e)
			elems[e] = tok
			ps.set(tok, query[e%2], 0.82) // all edges point at q0/q1 → tiny matching
		}
		raw = append(raw, sets.Set{Elements: elems})
	}
	repo := sets.NewRepository(raw)
	src := index.NewFuncIndex(repo.Vocabulary(), ps)
	eng := NewEngine(repo, src, Options{K: 1, Alpha: 0.8})
	results, stats := eng.Search(query)
	if len(results) != 1 || results[0].SetID != 0 {
		t.Fatalf("dominant set not found: %+v", results)
	}
	if stats.Candidates != 7 {
		t.Fatalf("candidates = %d, want 7", stats.Candidates)
	}
	// The weak sets must not be fully matched: refinement or post-processing
	// filters handle all of them.
	if stats.EMFull > 1 {
		t.Fatalf("too many full matchings: %+v", stats)
	}
}

func token(s, e int) string {
	return string(rune('f'+s)) + string(rune('0'+e)) + "tok"
}

// TestVanillaLowerBoundInitialization: a candidate sharing exact tokens with
// the query must never be pruned below its vanilla overlap (Lemma 1).
func TestVanillaLowerBoundInitialization(t *testing.T) {
	ps := newPairSim()
	// Strong distractors to pump θlb.
	var raw []sets.Set
	query := []string{"x0", "x1", "x2", "x3"}
	raw = append(raw, sets.Set{Name: "exact-copy", Elements: query})
	raw = append(raw, sets.Set{Name: "exact-sub", Elements: []string{"x0", "x1", "x2"}})
	for i := 0; i < 5; i++ {
		tok := token(9+i, 0)
		ps.set(tok, "x0", 0.95)
		raw = append(raw, sets.Set{Elements: []string{tok}})
	}
	repo := sets.NewRepository(raw)
	src := index.NewFuncIndex(repo.Vocabulary(), ps)
	results, _ := NewEngine(repo, src, Options{K: 2, Alpha: 0.8, ExactScores: true}).Search(query)
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].SetID != 0 || results[0].Score != 4 {
		t.Fatalf("top-1 = %+v, want exact-copy @ 4", results[0])
	}
	if results[1].SetID != 1 || results[1].Score != 3 {
		t.Fatalf("top-2 = %+v, want exact-sub @ 3", results[1])
	}
}

// TestStatsMemoryMonotoneInAlpha: lowering α grows the token stream and its
// footprint (more candidate edges).
func TestStatsMemoryMonotoneInAlpha(t *testing.T) {
	repo, model, query := randomInstance(33)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	_, loose := NewEngine(repo, src, Options{K: 3, Alpha: 0.55}).Search(query)
	_, tight := NewEngine(repo, src, Options{K: 3, Alpha: 0.95}).Search(query)
	if loose.StreamTuples < tight.StreamTuples {
		t.Fatalf("stream at α=0.55 (%d) smaller than at α=0.95 (%d)", loose.StreamTuples, tight.StreamTuples)
	}
	if loose.MemStreamBytes < tight.MemStreamBytes {
		t.Fatalf("stream footprint shrank with lower α")
	}
}

// TestEngineReuseAcrossQueries: one engine must serve many queries with
// independent results (no state leakage).
func TestEngineReuseAcrossQueries(t *testing.T) {
	repo, model, _ := randomInstance(41)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	eng := NewEngine(repo, src, Options{K: 3, Alpha: 0.7, ExactScores: true})
	q1 := repo.Set(0).Elements
	q2 := repo.Set(1).Elements
	r1a, _ := eng.Search(q1)
	r2, _ := eng.Search(q2)
	r1b, _ := eng.Search(q1)
	if len(r1a) != len(r1b) {
		t.Fatal("same query differs across calls")
	}
	for i := range r1a {
		if r1a[i] != r1b[i] {
			t.Fatalf("query 1 result changed after an interleaved query: %+v vs %+v", r1a[i], r1b[i])
		}
	}
	checkTopK(t, repo, model, dedupStrings(q2), 0.7, 3, r2)
}

// TestEngineConcurrentSearches: Search must be safe for concurrent use.
func TestEngineConcurrentSearches(t *testing.T) {
	repo, model, _ := randomInstance(43)
	src := index.NewFuncIndex(repo.Vocabulary(), model)
	eng := NewEngine(repo, src, Options{K: 3, Alpha: 0.7, Partitions: 2, Workers: 2})
	done := make(chan []Result, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			q := repo.Set(g % repo.Len()).Elements
			r, _ := eng.Search(q)
			done <- r
		}(g)
	}
	for g := 0; g < 8; g++ {
		if r := <-done; len(r) == 0 {
			t.Fatal("concurrent search returned nothing for a self query")
		}
	}
}
