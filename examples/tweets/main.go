// Semantic tweet search over a Twitter-like corpus of short word sets — the
// document search scenario of the paper (§VIII-A1 builds sets from the
// distinct words of each English tweet).
//
// Short sets make the contrast between index choices visible: the example
// runs the same queries through the exact vector index and the approximate
// IVF index (the Faiss-style trade-off) and reports result agreement and
// latency.
//
// Run with: go run ./examples/tweets
package main

import (
	"fmt"
	"time"

	koios "repro"
)

func main() {
	fmt.Println("Generating Twitter-like corpus (distinct words per tweet)...")
	ds, err := koios.GenerateDataset("twitter", 0.1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %d tweets\n\n", len(ds.Collection))

	cfg := koios.Config{K: 10, Alpha: 0.8, ExactScores: true}
	exact := koios.NewWithVectors(ds.Collection, ds.Vectors, cfg)
	approx := koios.NewWithSource(ds.Collection, koios.SourceIVF(ds.Vectors, 64, 8), cfg)

	queries := ds.Queries
	if len(queries) > 10 {
		queries = queries[:10]
	}

	var exactTime, approxTime time.Duration
	agree, total := 0, 0
	for qi, q := range queries {
		t0 := time.Now()
		re, _ := exact.Search(q.Elements)
		exactTime += time.Since(t0)

		t0 = time.Now()
		ra, _ := approx.Search(q.Elements)
		approxTime += time.Since(t0)

		inExact := map[int]bool{}
		for _, r := range re {
			inExact[r.SetID] = true
		}
		hit := 0
		for _, r := range ra {
			if inExact[r.SetID] {
				hit++
			}
		}
		agree += hit
		total += len(re)

		if qi == 0 && len(re) > 0 {
			fmt.Printf("Sample query (tweet #%d): %v ...\n", q.SourceSet, q.Elements[:min(5, len(q.Elements))])
			fmt.Println("Nearest tweets by semantic overlap (exact index):")
			for rank, r := range re[:min(5, len(re))] {
				fmt.Printf("  #%d  %-14s score=%.2f\n", rank+1, r.SetName, r.Score)
			}
			fmt.Println()
		}
	}

	fmt.Printf("Across %d queries:\n", len(queries))
	fmt.Printf("  exact index:  total %v\n", exactTime)
	fmt.Printf("  IVF (8/64 probes): total %v\n", approxTime)
	if total > 0 {
		fmt.Printf("  result agreement: %d/%d (IVF recall < 1 ⇒ Koios exact only with an exact index, §VIII-E)\n",
			agree, total)
	}
}
