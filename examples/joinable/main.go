// Joinable-table discovery over an OpenData-like corpus — the dataset
// discovery scenario of the paper's introduction.
//
// Each set is one table column (its distinct cell values). Given a query
// column, the engine returns the columns most joinable with it under
// *semantic* equality: typos and synonym values count toward joinability,
// which plain value-overlap search misses. The example contrasts the
// semantic top-k with vanilla overlap and reports filter effectiveness.
//
// Run with: go run ./examples/joinable
package main

import (
	"fmt"
	"time"

	koios "repro"
)

func main() {
	fmt.Println("Generating OpenData-like corpus (columns of distinct cell values)...")
	ds, err := koios.GenerateDataset("opendata", 0.1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %d columns, %d distinct values\n\n", len(ds.Collection), vocabSize(ds.Collection))

	eng := koios.NewWithVectors(ds.Collection, ds.Vectors, koios.Config{
		K:           5,
		Alpha:       0.8,
		Partitions:  4,
		Workers:     4,
		ExactScores: true,
	})

	// Also build a vanilla-overlap ranking for comparison: semantic overlap
	// under the equality similarity is the vanilla overlap.
	vanilla := koios.New(ds.Collection, koios.Exact(), koios.Config{K: 5, Alpha: 0.5, ExactScores: true})

	query := ds.Queries[0]
	fmt.Printf("Query column: #%d with %d values, e.g. %v\n\n",
		query.SourceSet, len(query.Elements), query.Elements[:min(4, len(query.Elements))])

	start := time.Now()
	results, stats := eng.Search(query.Elements)
	elapsed := time.Since(start)

	fmt.Println("Most joinable columns by semantic overlap:")
	for rank, r := range results {
		v := koios.VanillaOverlap(query.Elements, ds.Collection[r.SetID].Elements)
		fmt.Printf("  #%d  %-16s semantic=%.1f  vanilla=%d  (|C|=%d)\n",
			rank+1, r.SetName, r.Score, v, len(ds.Collection[r.SetID].Elements))
	}

	vres, _ := vanilla.Search(query.Elements)
	fmt.Println("\nTop columns by vanilla overlap (for contrast):")
	for rank, r := range vres {
		fmt.Printf("  #%d  %-16s vanilla=%.0f\n", rank+1, r.SetName, r.Score)
	}

	overlap := 0
	vset := map[int]bool{}
	for _, r := range vres {
		vset[r.SetID] = true
	}
	for _, r := range results {
		if vset[r.SetID] {
			overlap++
		}
	}
	fmt.Printf("\nResult intersection: %d/%d — semantic search surfaces joins vanilla misses.\n", overlap, len(results))
	fmt.Printf("\nSearch took %v: %d candidates, %.1f%% pruned before any graph matching,\n",
		elapsed, stats.Candidates, 100*float64(stats.IUBPruned)/float64(max(stats.Candidates, 1)))
	fmt.Printf("%d exact matchings (%d aborted early by the label-sum filter).\n",
		stats.EMFull+stats.FinalizeEM, stats.EMEarly)
}

func vocabSize(collection []koios.Set) int {
	seen := map[string]bool{}
	for _, s := range collection {
		for _, e := range s.Elements {
			seen[e] = true
		}
	}
	return len(seen)
}
