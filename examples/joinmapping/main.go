// Join mapping: after *discovering* joinable columns (the search problem
// Koios solves), produce the value-level mapping that realizes the join —
// the task SEMA-JOIN addresses with corpus statistics, here derived from
// the same maximum matching that defines the semantic overlap (§IX of the
// paper).
//
// The example runs the paper's Figure 1 instance end to end: discovery
// ranks C2 first, and the mapping shows the optimal one-to-one rematch
// (Columbia→SC, Charleston→Southern) that a greedy pairing would miss.
//
// Run with: go run ./examples/joinmapping
package main

import (
	"fmt"

	koios "repro"
)

type figure1 struct{ m map[[2]string]float64 }

func newFigure1() figure1 {
	f := figure1{m: map[[2]string]float64{}}
	set := func(a, b string, s float64) { f.m[[2]string{a, b}] = s; f.m[[2]string{b, a}] = s }
	set("Blaine", "Blain", 0.99)
	set("BigApple", "NewYorkCity", 0.90)
	set("Columbia", "Southern", 0.85)
	set("Columbia", "SC", 0.80)
	set("Charleston", "Southern", 0.80)
	set("Seattle", "WestCoast", 0.70)
	set("Columbia", "Lexington", 0.70)
	set("Charleston", "MtPleasant", 0.70)
	return f
}

func (f figure1) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	return f.m[[2]string{a, b}]
}
func (f figure1) Name() string { return "figure1" }

func main() {
	queryColumn := []string{"LA", "Seattle", "Columbia", "Blaine", "BigApple", "Charleston"}
	collection := []koios.Set{
		{Name: "C1", Elements: []string{"LA", "Blain", "Appleton", "MtPleasant", "Lexington", "WestCoast"}},
		{Name: "C2", Elements: []string{"LA", "Sacramento", "Southern", "Blain", "SC", "Minnesota", "NewYorkCity"}},
	}
	eng := koios.New(collection, newFigure1(), koios.Config{K: 2, Alpha: 0.7, ExactScores: true})

	fmt.Println("Step 1 — discovery: which columns can join with the query column?")
	results, _ := eng.Search(queryColumn)
	for rank, r := range results {
		fmt.Printf("  #%d  %-3s semantic overlap %.2f\n", rank+1, r.SetName, r.Score)
	}

	fmt.Println("\nStep 2 — mapping: how do the values of the best match line up?")
	pairs, err := eng.JoinMapping(queryColumn, results[0].SetID)
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		marker := ""
		if p.Sim < 1 && (p.QueryElement == "Columbia" || p.QueryElement == "Charleston") {
			marker = "   ← optimal rematch greedy would miss"
		}
		fmt.Printf("  %-12s → %-12s (sim %.2f)%s\n", p.QueryElement, p.SetElement, p.Sim, marker)
	}

	fmt.Println("\nStep 3 — workloads: run many discovery queries against the same engine.")
	workload := [][]string{
		queryColumn,
		{"LA", "Sacramento", "Minnesota"},
		{"Blaine", "NewYorkCity"},
	}
	lists := eng.SearchWorkload(workload, 2)
	for qi, rs := range lists {
		if len(rs) > 0 {
			fmt.Printf("  query %d: best join partner %s (%.2f)\n", qi, rs[0].SetName, rs[0].Score)
		}
	}
}
