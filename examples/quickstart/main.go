// Quickstart: the paper's Figure 1 worked example through the public API.
//
// A query set of US place names is searched against two candidate sets.
// Vanilla overlap ties them (both share only "LA"), greedy matching picks
// the wrong winner, and exact semantic overlap ranks C2 first — the point
// of the paper's motivating example.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	koios "repro"
)

// figure1 is the element similarity of the paper's Figure 1: semantic
// relations (synonyms, sibling entities) that no character-level measure
// finds. In a real deployment this would be cosine over embeddings — see
// examples/joinable — but a fixed table keeps the quickstart dependency-free
// and exactly reproduces the published numbers.
type figure1 struct{ m map[[2]string]float64 }

func newFigure1() figure1 {
	f := figure1{m: map[[2]string]float64{}}
	set := func(a, b string, s float64) { f.m[[2]string{a, b}] = s; f.m[[2]string{b, a}] = s }
	set("Blaine", "Blain", 0.99)         // typo
	set("BigApple", "NewYorkCity", 0.90) // synonym
	set("Columbia", "Southern", 0.85)
	set("Columbia", "SC", 0.80)         // Columbia is a city in SC
	set("Charleston", "Southern", 0.80) // Charleston is in the South
	set("Seattle", "WestCoast", 0.70)
	set("Columbia", "Lexington", 0.70)
	set("Charleston", "MtPleasant", 0.70)
	return f
}

func (f figure1) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	return f.m[[2]string{a, b}]
}
func (f figure1) Name() string { return "figure1" }

func main() {
	query := []string{"LA", "Seattle", "Columbia", "Blaine", "BigApple", "Charleston"}
	collection := []koios.Set{
		{Name: "C1", Elements: []string{"LA", "Blain", "Appleton", "MtPleasant", "Lexington", "WestCoast"}},
		{Name: "C2", Elements: []string{"LA", "Sacramento", "Southern", "Blain", "SC", "Minnesota", "NewYorkCity"}},
	}
	fn := newFigure1()

	fmt.Println("Query:", query)
	fmt.Println()
	fmt.Println("Pairwise measures (α = 0.7):")
	for _, c := range collection {
		fmt.Printf("  %s: vanilla = %d   greedy = %.2f   semantic = %.2f\n",
			c.Name,
			koios.VanillaOverlap(query, c.Elements),
			koios.GreedyOverlap(query, c.Elements, fn, 0.7),
			koios.SemanticOverlap(query, c.Elements, fn, 0.7),
		)
	}

	eng := koios.New(collection, fn, koios.Config{K: 2, Alpha: 0.7, ExactScores: true})
	results, stats := eng.Search(query)

	fmt.Println()
	fmt.Println("Top-k semantic overlap search:")
	for rank, r := range results {
		fmt.Printf("  #%d  %-3s score=%.2f verified=%v\n", rank+1, r.SetName, r.Score, r.Verified)
	}
	fmt.Printf("\n%d candidates, %d pruned in refinement, %d exact matchings\n",
		stats.Candidates, stats.IUBPruned, stats.EMFull+stats.FinalizeEM)
	fmt.Println("\nGreedy would have ranked C1 first (4.09 > 3.74) — exact matching flips it.")

	// The collection stays mutable after construction: inserts and deletes
	// are served from immutable segments, so concurrent searches never
	// block (DESIGN.md §4).
	eng.Insert(koios.Set{Name: "C3", Elements: query})
	results, _ = eng.Search(query)
	fmt.Println("\nAfter inserting C3 (the query itself):")
	for rank, r := range results {
		fmt.Printf("  #%d  %-3s score=%.2f\n", rank+1, r.SetName, r.Score)
	}
	eng.Delete("C3")
	if results, _ = eng.Search(query); results[0].SetName == "C2" {
		fmt.Println("\nAfter deleting C3, C2 leads again — as if C3 had never existed.")
	}
}
