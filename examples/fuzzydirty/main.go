// Dirty-data matching without embeddings: Koios as a *fuzzy* set search
// engine, using the Jaccard similarity of 3-grams as the element measure —
// the configuration of the paper's SilkMoth comparison (§VIII-B).
//
// The scenario: two data-entry teams typed the same reference lists of
// product names, each introducing its own typos. Vanilla overlap barely
// connects a query list to its dirty counterparts; 3-gram fuzzy semantic
// overlap recovers them. No vectors are involved, demonstrating that the
// engine is independent of the similarity function choice.
//
// Run with: go run ./examples/fuzzydirty
package main

import (
	"fmt"
	"math/rand"
	"strings"

	koios "repro"
)

var products = []string{
	"espresso machine", "milk frother", "coffee grinder", "kettle gooseneck",
	"pour over dripper", "french press", "aero press", "digital scale",
	"burr grinder", "cold brew jar", "moka pot", "filter papers",
	"thermo jug", "latte pitcher", "tamper steel", "knock box",
	"cleaning brush", "descaler powder", "bean container", "travel mug",
}

// smudge introduces a typo with probability p.
func smudge(rng *rand.Rand, s string, p float64) string {
	if rng.Float64() > p {
		return s
	}
	b := []byte(s)
	i := rng.Intn(len(b))
	switch rng.Intn(3) {
	case 0:
		b[i] = byte('a' + rng.Intn(26))
	case 1:
		b = append(b[:i], b[i+1:]...)
	default:
		b = append(b[:i], append([]byte{b[i]}, b[i:]...)...)
	}
	return string(b)
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Build 30 "entered lists": each is a sample of the reference products,
	// typed with team-specific dirtiness.
	var collection []koios.Set
	for team := 0; team < 3; team++ {
		dirt := 0.2 + 0.2*float64(team)
		for list := 0; list < 10; list++ {
			n := 6 + rng.Intn(8)
			perm := rng.Perm(len(products))[:n]
			var elems []string
			for _, pi := range perm {
				elems = append(elems, smudge(rng, products[pi], dirt))
			}
			collection = append(collection, koios.Set{
				Name:     fmt.Sprintf("team%d-list%d", team, list),
				Elements: elems,
			})
		}
	}

	// The query is a clean excerpt of the reference list.
	query := products[:8]
	fmt.Println("Query (clean):", strings.Join(query, ", "))
	fmt.Println()

	fn := koios.JaccardQGrams(3)
	eng := koios.New(collection, fn, koios.Config{K: 5, Alpha: 0.5, ExactScores: true})
	results, stats := eng.Search(query)

	fmt.Println("Top lists by fuzzy (3-gram) semantic overlap:")
	for rank, r := range results {
		v := koios.VanillaOverlap(query, collection[r.SetID].Elements)
		fmt.Printf("  #%d  %-14s fuzzy=%.2f  vanilla=%d\n", rank+1, r.SetName, r.Score, v)
	}
	fmt.Printf("\n%d candidates, %d pruned without matching, %d exact matchings.\n",
		stats.Candidates, stats.IUBPruned, stats.EMFull+stats.FinalizeEM)
	fmt.Println("\nSample recovered pairs:")
	shown := 0
	for _, r := range results[:1] {
		for _, e := range collection[r.SetID].Elements {
			for _, q := range query {
				s := fn.Sim(q, e)
				if s >= 0.5 && s < 1 && shown < 4 {
					fmt.Printf("  %-22q ~ %-22q (jaccard3 = %.2f)\n", q, e, s)
					shown++
				}
			}
		}
	}
}
