package koios

import (
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/sets"
	"repro/internal/sim"
)

// Set is a named set of string elements. Elements are de-duplicated on
// engine construction.
type Set struct {
	Name     string
	Elements []string
}

// Similarity scores two set elements. Implementations must be symmetric,
// return 1 for identical strings, and values in [0,1] otherwise (Def. 1 of
// the paper).
type Similarity interface {
	Sim(a, b string) float64
	Name() string
}

// VectorFunc maps a token to its embedding vector; ok=false marks the token
// as out of vocabulary. Identical out-of-vocabulary tokens still count as
// exact matches during search.
type VectorFunc func(token string) (vec []float32, ok bool)

// Config tunes a search engine. The zero value means k=10, α=0.8, a single
// partition and a single verification worker.
type Config struct {
	// K is the result size.
	K int
	// Alpha is the element similarity threshold α ∈ (0,1].
	Alpha float64
	// Partitions > 1 splits the repository into random partitions searched
	// in parallel with a shared pruning threshold.
	Partitions int
	// Workers bounds concurrent verifications per partition.
	Workers int
	// ExactScores verifies every returned set so Result.Score is the exact
	// semantic overlap (single-partition searches may otherwise return
	// proven lower bounds for sets whose membership needed no matching).
	ExactScores bool
	// DisableIUB, DisableNoEM and DisableEarlyTerm switch off individual
	// filters; searching stays exact but slower. They exist for ablation
	// studies.
	DisableIUB       bool
	DisableNoEM      bool
	DisableEarlyTerm bool
}

func (c Config) coreOptions() core.Options {
	return core.Options{
		K:                c.K,
		Alpha:            c.Alpha,
		Partitions:       c.Partitions,
		Workers:          c.Workers,
		ExactScores:      c.ExactScores,
		DisableIUB:       c.DisableIUB,
		DisableNoEM:      c.DisableNoEM,
		DisableEarlyTerm: c.DisableEarlyTerm,
	}
}

// Result is one entry of the top-k result, best first.
type Result struct {
	// SetID is the set's index in the collection passed to New.
	SetID int
	// SetName is the set's Name (or "set-<id>" when it was empty).
	SetName string
	// Score is the semantic overlap SO(Q,C) when Verified, and otherwise a
	// lower bound that sufficed to prove top-k membership.
	Score float64
	// Verified reports whether Score is exact.
	Verified bool
}

// Stats exposes the engine's filter, timing and memory accounting; see the
// field documentation in the internal core package. It feeds the benchmark
// tables of EXPERIMENTS.md.
type Stats = core.Stats

// Engine answers top-k semantic overlap queries over a fixed collection.
// Engines are safe for concurrent use.
type Engine struct {
	repo  *sets.Repository
	src   index.NeighborSource
	eng   *core.Engine
	alpha float64
}

// New builds an engine whose token index is a threshold scan under fn —
// exact for any Similarity, at O(|vocabulary|) retrieval cost per query
// element.
func New(collection []Set, fn Similarity, cfg Config) *Engine {
	repo := buildRepo(collection)
	return newEngine(repo, index.NewFuncIndex(repo.Vocabulary(), fn), cfg)
}

// NewWithVectors builds an engine over embedding vectors with an exact
// (brute-force, batched) cosine index — the stand-in for the paper's Faiss
// index that keeps results exact.
func NewWithVectors(collection []Set, vec VectorFunc, cfg Config) *Engine {
	repo := buildRepo(collection)
	return newEngine(repo, index.NewExact(repo.Vocabulary(), vec), cfg)
}

// NewWithSource builds an engine over a custom neighbor source created with
// one of the Source constructors (SourceIVF, SourceMinHashLSH, SourceHNSW).
// Approximate sources trade exactness of the search for retrieval speed.
func NewWithSource(collection []Set, source Source, cfg Config) *Engine {
	repo := buildRepo(collection)
	return newEngine(repo, source.build(repo.Vocabulary()), cfg)
}

func newEngine(repo *sets.Repository, src index.NeighborSource, cfg Config) *Engine {
	eng := core.NewEngine(repo, src, cfg.coreOptions())
	return &Engine{repo: repo, src: src, eng: eng, alpha: eng.Options().Alpha}
}

// Search returns the top-k sets by semantic overlap with query, best first,
// together with search statistics.
func (e *Engine) Search(query []string) ([]Result, Stats) {
	raw, stats := e.eng.Search(query)
	out := make([]Result, len(raw))
	for i, r := range raw {
		out[i] = Result{
			SetID:    r.SetID,
			SetName:  e.repo.Set(r.SetID).Name,
			Score:    r.Score,
			Verified: r.Verified,
		}
	}
	return out, stats
}

// Collection returns the engine's number of sets.
func (e *Engine) Collection() int { return e.repo.Len() }

// Vocabulary returns the number of distinct elements across the collection.
func (e *Engine) Vocabulary() int { return len(e.repo.Vocabulary()) }

// Source selects a similarity index implementation for NewWithSource.
type Source struct {
	build func(vocab []string) index.NeighborSource
}

// SourceIVF is an approximate inverted-file vector index in the style of
// Faiss IVF: nlist k-means clusters, probing the nprobe nearest per query
// element. Recall < 1: the search may miss candidates the exact index finds.
func SourceIVF(vec VectorFunc, nlist, nprobe int) Source {
	return Source{build: func(vocab []string) index.NeighborSource {
		return index.NewIVF(vocab, vec, nlist, nprobe, 1)
	}}
}

// SourceMinHashLSH retrieves Jaccard-of-q-gram neighbors through MinHash
// banding LSH; candidates are verified exactly, so precision is 1 and
// recall depends on bands×rows.
func SourceMinHashLSH(q, bands, rows int) Source {
	return Source{build: func(vocab []string) index.NeighborSource {
		return index.NewMinHashLSH(vocab, q, bands, rows, 1)
	}}
}

// SourceHNSW is an approximate graph-based vector index (hierarchical
// navigable small world); efSearch widens retrieval for higher recall.
// Zero values pick reasonable defaults (M=12, efConstruction=64,
// efSearch=96).
func SourceHNSW(vec VectorFunc, m, efConstruction, efSearch int) Source {
	return Source{build: func(vocab []string) index.NeighborSource {
		return index.NewHNSW(vocab, vec, index.HNSWConfig{
			M:              m,
			EfConstruction: efConstruction,
			EfSearch:       efSearch,
			Seed:           1,
		})
	}}
}

// Exact is the equality similarity; semantic overlap under Exact is the
// vanilla set overlap.
func Exact() Similarity { return sim.Exact{} }

// JaccardQGrams compares elements by the Jaccard similarity of their
// q-gram sets (q=3 reproduces the paper's fuzzy-search comparisons).
func JaccardQGrams(q int) Similarity { return sim.JaccardQGrams{Q: q} }

// JaccardWords compares elements by the Jaccard similarity of their
// white-space-separated word sets.
func JaccardWords() Similarity { return sim.JaccardWords{} }

// EditSimilarity compares elements by normalized Levenshtein similarity.
func EditSimilarity() Similarity { return sim.EditSimilarity{} }

// CosineSimilarity adapts a VectorFunc into an element Similarity (cosine
// of the two vectors; identical tokens are 1 even when out of vocabulary).
func CosineSimilarity(vec VectorFunc) Similarity { return cosineSim{vec} }

type cosineSim struct{ vec VectorFunc }

func (c cosineSim) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	va, oka := c.vec(a)
	vb, okb := c.vec(b)
	if !oka || !okb {
		return 0
	}
	return sim.Cosine(va, vb)
}

func (c cosineSim) Name() string { return "cosine" }

func buildRepo(collection []Set) *sets.Repository {
	raw := make([]sets.Set, len(collection))
	for i, s := range collection {
		raw[i] = sets.Set{Name: s.Name, Elements: s.Elements}
	}
	return sets.NewRepository(raw)
}
