package koios

import (
	"context"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/segment"
	"repro/internal/sets"
	"repro/internal/sim"
)

// ErrImmutable is returned by Insert on engines whose similarity index
// cannot follow a growing vocabulary (the approximate NewWithSource
// indexes are built once over the construction-time vocabulary). Engines
// from New and NewWithVectors are always mutable.
var ErrImmutable = segment.ErrImmutable

// ErrClosed is returned by mutations on a closed engine.
var ErrClosed = segment.ErrClosed

// DurabilityError reports a mutation on a durable engine that WAS applied
// and WAL-logged but whose follow-on durability step (WAL fsync under
// SyncWAL, or a checkpoint a segment seal triggered) failed. Distinguish
// it with errors.As; any other Insert/Delete error means the mutation did
// not happen.
type DurabilityError = segment.DurabilityError

// Set is a named set of string elements. Elements are de-duplicated on
// engine construction.
type Set struct {
	Name     string
	Elements []string
}

// Similarity scores two set elements. Implementations must be symmetric,
// return 1 for identical strings, and values in [0,1] otherwise (Def. 1 of
// the paper).
type Similarity interface {
	Sim(a, b string) float64
	Name() string
}

// VectorFunc maps a token to its embedding vector; ok=false marks the token
// as out of vocabulary. Identical out-of-vocabulary tokens still count as
// exact matches during search.
type VectorFunc func(token string) (vec []float32, ok bool)

// Config tunes a search engine. The zero value means k=10, α=0.8, a single
// partition and a single verification worker.
type Config struct {
	// K is the result size.
	K int
	// Alpha is the element similarity threshold α ∈ (0,1].
	Alpha float64
	// Partitions > 1 splits the repository into random partitions searched
	// in parallel with a shared pruning threshold.
	Partitions int
	// Workers bounds concurrent verifications per partition.
	Workers int
	// ExactScores verifies every returned set so Result.Score is the exact
	// semantic overlap (single-partition searches may otherwise return
	// proven lower bounds for sets whose membership needed no matching).
	ExactScores bool
	// DisableIUB, DisableNoEM and DisableEarlyTerm switch off individual
	// filters; searching stays exact but slower. They exist for ablation
	// studies.
	DisableIUB       bool
	DisableNoEM      bool
	DisableEarlyTerm bool
	// DisableLazy switches the lazy token stream off: the search retrieves,
	// sorts, and consumes every α-neighbor instead of cutting the stream
	// once the top-k is decided (DESIGN.md §10). Results are byte-identical
	// either way — for any index, the approximate NewWithSource ones
	// included (a cut search completes truncated edge lists from the
	// source's own retrieval, so it reproduces exactly what that source's
	// eager pipeline would return). The flag exists for ablation studies.
	DisableLazy bool
	// SealThreshold is the number of inserted sets buffered in the mutable
	// memtable before it seals into an immutable segment (default 256);
	// MaxSegments bounds how many sealed segments accumulate before
	// background compaction merges them (default 4). They only matter once
	// Insert/Delete are used.
	SealThreshold int
	MaxSegments   int
	// SyncWAL fsyncs the write-ahead log after every Insert/Delete on
	// durable engines (Open/OpenWithVectors). Off by default: graceful
	// Close and process crashes are always covered; SyncWAL additionally
	// covers power loss at one fsync per write.
	SyncWAL bool
	// SimCache bounds the cross-query similarity cache in entries: token
	// pairs whose similarity was computed for one query are reused by every
	// later query (DESIGN.md §9). 0 selects the default size (~1M entries);
	// negative disables caching. Cached values cannot change scores — token
	// IDs are append-only and similarity functions are pure, so a hit
	// replays exactly the value a recomputation would produce.
	SimCache int
	// BatchWorkers bounds concurrent queries inside one SearchBatch call
	// (default 1: queries run sequentially against the shared snapshot).
	BatchWorkers int
	// Maintenance opts registries (NewRegistry/OpenRegistry) into
	// coordinated background scheduling and graceful write degradation
	// (DESIGN.md §15). Standalone engines (New/Open) ignore it — they keep
	// the legacy self-driven maintenance regardless.
	Maintenance MaintenanceConfig
}

func (c Config) coreOptions() core.Options {
	return core.Options{
		K:                c.K,
		Alpha:            c.Alpha,
		Partitions:       c.Partitions,
		Workers:          c.Workers,
		ExactScores:      c.ExactScores,
		DisableIUB:       c.DisableIUB,
		DisableNoEM:      c.DisableNoEM,
		DisableEarlyTerm: c.DisableEarlyTerm,
		DisableLazy:      c.DisableLazy,
	}
}

// Result is one entry of the top-k result, best first.
type Result struct {
	// SetID is the set's index in the collection passed to New.
	SetID int
	// SetName is the set's Name (or "set-<id>" when it was empty).
	SetName string
	// Score is the semantic overlap SO(Q,C) when Verified, and otherwise a
	// lower bound that sufficed to prove top-k membership.
	Score float64
	// Verified reports whether Score is exact.
	Verified bool
}

// Stats exposes the engine's filter, timing and memory accounting; see the
// field documentation in the internal core package. It feeds the benchmark
// tables of EXPERIMENTS.md.
type Stats = core.Stats

// CacheStats snapshots the cross-query similarity cache: hit/miss/eviction
// counters and current size. All zeros when the cache is disabled.
type CacheStats = sim.CacheStats

// Engine answers top-k semantic overlap queries over a mutable collection
// served from immutable segments (DESIGN.md §4). Engines are safe for
// concurrent use: any number of Search calls may run while Insert, Delete,
// and background compaction mutate the collection — each search runs
// against a consistent snapshot and never blocks on writers.
type Engine struct {
	mgr *segment.Manager
	// col is set on engines handed out by a Registry: mutations route
	// through the collection so its quota accounting stays consistent.
	// Standalone engines (New/Open) leave it nil.
	col          *collection.Collection
	alpha        float64
	batchWorkers int
}

// New builds an engine whose token index is a threshold scan under fn —
// exact for any Similarity, at O(|vocabulary|) retrieval cost per query
// element. The engine is mutable: Insert and Delete work after
// construction.
func New(collection []Set, fn Similarity, cfg Config) *Engine {
	return newEngine(collection, cfg, func(dict *sets.Dictionary) index.NeighborSource {
		return index.NewDynamicFunc(dict, fn)
	})
}

// NewWithVectors builds an engine over embedding vectors with an exact
// (brute-force, batched) cosine index — the stand-in for the paper's Faiss
// index that keeps results exact. The engine is mutable: vectors for
// inserted tokens are fetched from vec on demand.
func NewWithVectors(collection []Set, vec VectorFunc, cfg Config) *Engine {
	return newEngine(collection, cfg, func(dict *sets.Dictionary) index.NeighborSource {
		return index.NewDynamicExact(dict, vec)
	})
}

// NewWithSource builds an engine over a custom neighbor source created with
// one of the Source constructors (SourceIVF, SourceMinHashLSH, SourceHNSW).
// Approximate sources trade exactness of the search for retrieval speed.
// These indexes are built once over the construction-time vocabulary, so
// the engine rejects Insert with ErrImmutable (Delete still works).
func NewWithSource(collection []Set, source Source, cfg Config) *Engine {
	return newEngine(collection, cfg, func(dict *sets.Dictionary) index.NeighborSource {
		return source.build(dict.Snapshot())
	})
}

func newEngine(collection []Set, cfg Config, build segment.SourceBuilder) *Engine {
	raw := make([]sets.Set, len(collection))
	for i, s := range collection {
		raw[i] = sets.Set{Name: s.Name, Elements: s.Elements}
	}
	opts := cfg.coreOptions().WithDefaults()
	mgr := segment.NewManager(raw, build, opts, segment.Config{
		SealThreshold: cfg.SealThreshold,
		MaxSegments:   cfg.MaxSegments,
		SimCacheSize:  cfg.SimCache,
	})
	return &Engine{mgr: mgr, alpha: opts.Alpha, batchWorkers: cfg.BatchWorkers}
}

// Open builds a durable engine rooted at dir with a threshold-scan token
// index under fn (the mutable New construction). A directory that already
// holds an engine is recovered — checkpointed segments are loaded and the
// write-ahead log replayed — and collection is ignored; a fresh directory
// is seeded from collection and checkpointed immediately. See Checkpoint,
// Flush and Close for the durability lifecycle.
func Open(dir string, collection []Set, fn Similarity, cfg Config) (*Engine, error) {
	return openEngine(dir, collection, cfg, func(dict *sets.Dictionary) index.NeighborSource {
		return index.NewDynamicFunc(dict, fn)
	})
}

// OpenWithVectors is Open over embedding vectors with the exact cosine
// index (the mutable NewWithVectors construction). Vectors are not
// persisted: reopening needs the same vec function, and tokens it cannot
// embed stay out of vocabulary exactly as at first build.
func OpenWithVectors(dir string, collection []Set, vec VectorFunc, cfg Config) (*Engine, error) {
	return openEngine(dir, collection, cfg, func(dict *sets.Dictionary) index.NeighborSource {
		return index.NewDynamicExact(dict, vec)
	})
}

func openEngine(dir string, collection []Set, cfg Config, build segment.SourceBuilder) (*Engine, error) {
	raw := make([]sets.Set, len(collection))
	for i, s := range collection {
		raw[i] = sets.Set{Name: s.Name, Elements: s.Elements}
	}
	opts := cfg.coreOptions().WithDefaults()
	mgr, err := segment.Open(dir, raw, build, opts, segment.Config{
		SealThreshold: cfg.SealThreshold,
		MaxSegments:   cfg.MaxSegments,
		SyncWAL:       cfg.SyncWAL,
		SimCacheSize:  cfg.SimCache,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{mgr: mgr, alpha: opts.Alpha, batchWorkers: cfg.BatchWorkers}, nil
}

// Search returns the top-k sets by semantic overlap with query, best first,
// together with search statistics.
func (e *Engine) Search(query []string) ([]Result, Stats) {
	results, stats, _ := e.SearchContext(context.Background(), query)
	return results, stats
}

// SearchContext is Search honoring ctx: once ctx is canceled the search
// stops at the next refinement or post-processing checkpoint and returns
// ctx's error, so abandoned queries stop burning CPU.
func (e *Engine) SearchContext(ctx context.Context, query []string) ([]Result, Stats, error) {
	raw, stats, err := e.mgr.Search(ctx, query, 0)
	if err != nil {
		return nil, stats, err
	}
	out := make([]Result, len(raw))
	for i, r := range raw {
		out[i] = Result{SetID: int(r.ID), SetName: r.Name, Score: r.Score, Verified: r.Verified}
	}
	return out, stats, nil
}

// SearchBatch answers a slice of queries against one consistent snapshot of
// the collection: every query observes the same state (mutations committed
// mid-batch are invisible to all of them) and returns results and scores
// byte-identical to a Search issued against that state. Per-query results
// and stats come back in input order. Config.BatchWorkers > 1 runs that
// many queries concurrently; the default is sequential. On cancellation the
// batch stops and returns ctx's error.
func (e *Engine) SearchBatch(ctx context.Context, queries [][]string) ([][]Result, []Stats, error) {
	raw, stats, err := e.mgr.SearchBatch(ctx, queries, 0, e.batchWorkers)
	if err != nil {
		return nil, stats, err
	}
	out := make([][]Result, len(raw))
	for i, qres := range raw {
		out[i] = make([]Result, len(qres))
		for j, r := range qres {
			out[i][j] = Result{SetID: int(r.ID), SetName: r.Name, Score: r.Score, Verified: r.Verified}
		}
	}
	return out, stats, nil
}

// SimCacheStats snapshots the cross-query similarity cache counters
// (all zeros when the cache is disabled via Config.SimCache < 0).
func (e *Engine) SimCacheStats() CacheStats { return e.mgr.SimCacheStats() }

// Insert adds a set to the collection and returns its SetID (a stable
// handle: seed sets keep their construction index, inserted sets get the
// next integer). Inserting a name that is already live replaces the old
// set. The set is searchable as soon as Insert returns; concurrent
// searches keep their snapshot. Engines built with NewWithSource return
// ErrImmutable; engines from a Registry additionally enforce their
// collection's quota (*QuotaError, nothing applied) and — when the
// registry runs coordinated maintenance — the write-stall policy
// (*MaintenanceBacklogError, nothing applied, retry after RetryAfter).
func (e *Engine) Insert(s Set) (int, error) {
	if e.col != nil {
		id, err := e.col.Insert(s.Name, s.Elements)
		return int(id), err
	}
	id, err := e.mgr.Insert(s.Name, s.Elements)
	return int(id), err
}

// Delete removes the set with the given name from the collection,
// reporting whether it existed. The set disappears from searches as soon
// as Delete returns; its storage is reclaimed by background compaction.
// On durable engines the delete is WAL-logged before it is applied; an
// error other than *DurabilityError means it was not applied.
func (e *Engine) Delete(name string) (bool, error) {
	if e.col != nil {
		return e.col.Delete(name)
	}
	return e.mgr.Delete(name)
}

// Compact synchronously merges all sealed segments, reclaiming tombstoned
// sets. Searches proceed concurrently; mutations wait. On durable engines
// a successful merge is checkpointed.
func (e *Engine) Compact() error { return e.mgr.Compact() }

// Flush seals the memtable (buffered inserts) into an immutable segment
// regardless of the seal threshold — a deterministic segment boundary for
// tests, and a forced checkpoint on durable engines.
func (e *Engine) Flush() error { return e.mgr.Flush() }

// Checkpoint forces a durability checkpoint on engines from Open: the
// memtable seals, unpersisted segments are snapshotted, the manifest
// commits atomically, and the write-ahead log restarts empty. In-memory
// engines return nil.
func (e *Engine) Checkpoint() error { return e.mgr.Checkpoint() }

// Close checkpoints a durable engine and closes its write-ahead log.
// Further mutations fail with ErrClosed; searches keep answering from the
// last snapshot. Closing an in-memory engine only stops mutations.
func (e *Engine) Close() error { return e.mgr.Close() }

// Collection returns the engine's number of live sets.
func (e *Engine) Collection() int { return e.mgr.Len() }

// Vocabulary returns the number of distinct elements ever interned across
// the collection (the token dictionary is append-only, so elements of
// deleted sets keep counting).
func (e *Engine) Vocabulary() int { return e.mgr.VocabSize() }

// Segments reports the engine's segment layout: sealed immutable segments,
// buffered (memtable) sets, and tombstoned rows awaiting compaction.
func (e *Engine) Segments() (sealed, memtable, tombstones int) {
	return e.mgr.Segments()
}

// Health is the engine's resilience state: whether recovery had to
// quarantine damaged files (degraded mode) and which files it set aside.
type Health = segment.Health

// QuarantinedFile records one damaged file recovery moved to quarantine/.
type QuarantinedFile = segment.QuarantinedFile

// ScrubReport summarizes a checksum re-verification pass over a durable
// engine's live files.
type ScrubReport = segment.ScrubReport

// Health reports whether the engine is degraded — recovery quarantined
// corrupt files and the collection serves the survivors — and what was
// quarantined. In-memory engines are never degraded.
func (e *Engine) Health() Health { return e.mgr.Health() }

// Scrub re-verifies the checksums of every live on-disk file (dictionary,
// segment snapshots, active WAL) without modifying anything.
func (e *Engine) Scrub() ScrubReport { return e.mgr.Scrub() }

// Repair re-persists anything Scrub finds damaged from the intact
// in-memory state (fresh checkpoint, new manifest, bad copies swept) and
// clears degraded mode on success.
func (e *Engine) Repair() (ScrubReport, error) { return e.mgr.Repair() }

// Source selects a similarity index implementation for NewWithSource.
type Source struct {
	build func(vocab []string) index.NeighborSource
}

// SourceIVF is an approximate inverted-file vector index in the style of
// Faiss IVF: nlist k-means clusters, probing the nprobe nearest per query
// element. Recall < 1: the search may miss candidates the exact index finds.
func SourceIVF(vec VectorFunc, nlist, nprobe int) Source {
	return Source{build: func(vocab []string) index.NeighborSource {
		return index.NewIVF(vocab, vec, nlist, nprobe, 1)
	}}
}

// SourceMinHashLSH retrieves Jaccard-of-q-gram neighbors through MinHash
// banding LSH; candidates are verified exactly, so precision is 1 and
// recall depends on bands×rows.
func SourceMinHashLSH(q, bands, rows int) Source {
	return Source{build: func(vocab []string) index.NeighborSource {
		return index.NewMinHashLSH(vocab, q, bands, rows, 1)
	}}
}

// SourceHNSW is an approximate graph-based vector index (hierarchical
// navigable small world); efSearch widens retrieval for higher recall.
// Zero values pick reasonable defaults (M=12, efConstruction=64,
// efSearch=96).
func SourceHNSW(vec VectorFunc, m, efConstruction, efSearch int) Source {
	return Source{build: func(vocab []string) index.NeighborSource {
		return index.NewHNSW(vocab, vec, index.HNSWConfig{
			M:              m,
			EfConstruction: efConstruction,
			EfSearch:       efSearch,
			Seed:           1,
		})
	}}
}

// Exact is the equality similarity; semantic overlap under Exact is the
// vanilla set overlap.
func Exact() Similarity { return sim.Exact{} }

// JaccardQGrams compares elements by the Jaccard similarity of their
// q-gram sets (q=3 reproduces the paper's fuzzy-search comparisons).
func JaccardQGrams(q int) Similarity { return sim.JaccardQGrams{Q: q} }

// JaccardWords compares elements by the Jaccard similarity of their
// white-space-separated word sets.
func JaccardWords() Similarity { return sim.JaccardWords{} }

// EditSimilarity compares elements by normalized Levenshtein similarity.
func EditSimilarity() Similarity { return sim.EditSimilarity{} }

// CosineSimilarity adapts a VectorFunc into an element Similarity (cosine
// of the two vectors; identical tokens are 1 even when out of vocabulary).
func CosineSimilarity(vec VectorFunc) Similarity { return cosineSim{vec} }

type cosineSim struct{ vec VectorFunc }

func (c cosineSim) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	va, oka := c.vec(a)
	vb, okb := c.vec(b)
	if !oka || !okb {
		return 0
	}
	return sim.Cosine(va, vb)
}

func (c cosineSim) Name() string { return "cosine" }
