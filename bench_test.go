package koios

import (
	"io"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
)

// benchRunner builds a runner at the scale used for the in-repo benchmarks.
// The full documented run (EXPERIMENTS.md) uses cmd/koios-bench at a larger
// scale; these testing.B entry points keep every table and figure wired into
// `go test -bench` at a budget of seconds per experiment.
func benchRunner() *bench.Runner {
	return bench.NewRunner(bench.Config{
		Scale:              0.05,
		K:                  10,
		Alpha:              0.8,
		Partitions:         4,
		Workers:            4,
		QueriesPerInterval: 2,
		Timeout:            60 * time.Second,
	}, io.Discard)
}

func runExp(b *testing.B, exp string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if err := r.Run(exp); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact (Tables I–V, Figures 5–8, the SilkMoth
// comparison of §VIII-B, and the design-choice ablations of DESIGN.md §7).

func BenchmarkTable1Datasets(b *testing.B)        { runExp(b, "table1") }
func BenchmarkTable2PruningPower(b *testing.B)    { runExp(b, "table2") }
func BenchmarkTable3ResponseTime(b *testing.B)    { runExp(b, "table3") }
func BenchmarkTable4OpenDataPruning(b *testing.B) { runExp(b, "table4") }
func BenchmarkTable5WDCPruning(b *testing.B)      { runExp(b, "table5") }
func BenchmarkFig5aOpenDataTime(b *testing.B)     { runExp(b, "fig5a") }
func BenchmarkFig5bcOpenDataPhases(b *testing.B)  { runExp(b, "fig5bc") }
func BenchmarkFig5dOpenDataMemory(b *testing.B)   { runExp(b, "fig5d") }
func BenchmarkFig6aWDCTime(b *testing.B)          { runExp(b, "fig6a") }
func BenchmarkFig6bcWDCPhases(b *testing.B)       { runExp(b, "fig6bc") }
func BenchmarkFig6dWDCMemory(b *testing.B)        { runExp(b, "fig6d") }
func BenchmarkFig7aPartitions(b *testing.B)       { runExp(b, "fig7a") }
func BenchmarkFig7bAlpha(b *testing.B)            { runExp(b, "fig7b") }
func BenchmarkFig7cK(b *testing.B)                { runExp(b, "fig7c") }
func BenchmarkFig7dMemAlpha(b *testing.B)         { runExp(b, "fig7d") }
func BenchmarkFig8Quality(b *testing.B)           { runExp(b, "fig8") }
func BenchmarkSilkMothComparison(b *testing.B)    { runExp(b, "silkmoth") }
func BenchmarkAblation(b *testing.B)              { runExp(b, "ablation") }

// BenchmarkSearchSingleQuery measures one engine query end to end without
// harness overhead, per dataset kind — the microbenchmark behind the rows of
// Table III.
func BenchmarkSearchSingleQuery(b *testing.B) {
	for _, kind := range datagen.Kinds() {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			ds := datagen.GenerateDefault(kind, 0.05)
			src := index.NewExact(ds.Repo.Vocabulary(), ds.Model.Vector)
			eng := core.NewEngine(ds.Repo, src, core.Options{K: 10, Alpha: 0.8, Partitions: 4, Workers: 4})
			q := datagen.NewBenchmark(ds, 1).Queries[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Search(q.Elements)
			}
		})
	}
}
