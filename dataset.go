package koios

import (
	"fmt"

	"repro/internal/datagen"
)

// Dataset is a synthesized evaluation corpus: a collection of sets, the
// embedding vectors defining its semantic structure, and benchmark queries
// grouped by cardinality interval (interval -1 for uniform benchmarks).
// GenerateDataset reproduces the shape of the paper's four corpora — see
// DESIGN.md §4 for the substitution rationale.
type Dataset struct {
	Name       string
	Collection []Set
	Vectors    VectorFunc
	// Queries are benchmark query sets; Intervals[i] is the [lo,hi)
	// cardinality range of interval i.
	Queries   []DatasetQuery
	Intervals [][2]int
}

// DatasetQuery is one benchmark query.
type DatasetQuery struct {
	Elements []string
	// Interval indexes Dataset.Intervals, or -1 for uniform benchmarks.
	Interval int
	// SourceSet is the collection index the query was sampled from.
	SourceSet int
}

// GenerateDataset synthesizes one of the paper's evaluation datasets:
// kind ∈ {"dblp", "opendata", "twitter", "wdc"}. scale multiplies the
// default set count and vocabulary (1.0 is the documented benchmark scale;
// use ~0.1 for quick experiments).
func GenerateDataset(kind string, scale float64) (*Dataset, error) {
	var k datagen.Kind
	switch kind {
	case "dblp":
		k = datagen.DBLP
	case "opendata":
		k = datagen.OpenData
	case "twitter":
		k = datagen.Twitter
	case "wdc":
		k = datagen.WDC
	default:
		return nil, fmt.Errorf("koios: unknown dataset kind %q (want dblp, opendata, twitter, or wdc)", kind)
	}
	ds := datagen.GenerateDefault(k, scale)
	bench := datagen.NewBenchmark(ds, ds.Spec.Seed+1)
	out := &Dataset{
		Name:      kind,
		Vectors:   ds.Model.Vector,
		Intervals: bench.Intervals,
	}
	for _, s := range ds.Repo.Sets() {
		out.Collection = append(out.Collection, Set{Name: s.Name, Elements: s.Elements})
	}
	for _, q := range bench.Queries {
		out.Queries = append(out.Queries, DatasetQuery{
			Elements:  q.Elements,
			Interval:  q.Interval,
			SourceSet: q.SourceSet,
		})
	}
	return out, nil
}
