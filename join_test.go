package koios

import (
	"math"
	"testing"
)

func TestSearchWorkload(t *testing.T) {
	ds, err := GenerateDataset("twitter", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewWithVectors(ds.Collection, ds.Vectors, Config{K: 3, Alpha: 0.8, ExactScores: true})
	var workload [][]string
	for _, q := range ds.Queries[:4] {
		workload = append(workload, q.Elements)
	}
	results := eng.SearchWorkload(workload, 2)
	if len(results) != 4 {
		t.Fatalf("got %d result lists", len(results))
	}
	for qi, rs := range results {
		if len(rs) == 0 {
			t.Fatalf("workload query %d found nothing", qi)
		}
		// Must agree with a standalone search.
		direct, _ := eng.Search(workload[qi])
		if len(direct) != len(rs) {
			t.Fatalf("workload and direct search disagree in size for query %d", qi)
		}
		for i := range rs {
			if math.Abs(rs[i].Score-direct[i].Score) > tol {
				t.Fatalf("workload and direct scores differ at query %d rank %d", qi, i)
			}
		}
	}
}

func TestJoinMappingFigure1(t *testing.T) {
	eng := New(demoCollection(), newFigure1Sim(), Config{K: 2, Alpha: 0.7})
	pairs, err := eng.JoinMapping(figure1Query, 1) // C2
	if err != nil {
		t.Fatal(err)
	}
	// The optimal matching of Fig. 1: LA→LA, Blaine→Blain,
	// BigApple→NewYorkCity, and the {Columbia, Charleston}→{SC, Southern}
	// rematch that greedy misses.
	got := map[string]string{}
	sum := 0.0
	for _, p := range pairs {
		got[p.QueryElement] = p.SetElement
		sum += p.Sim
	}
	if got["LA"] != "LA" || got["Blaine"] != "Blain" || got["BigApple"] != "NewYorkCity" {
		t.Fatalf("mapping = %v", got)
	}
	if got["Columbia"] != "SC" || got["Charleston"] != "Southern" {
		t.Fatalf("optimal rematch missing: %v", got)
	}
	if math.Abs(sum-4.49) > tol {
		t.Fatalf("mapping weight = %v, want the semantic overlap 4.49", sum)
	}
	if _, err := eng.JoinMapping(figure1Query, 99); err == nil {
		t.Fatal("out-of-range set accepted")
	}
}
