// Package koios is an exact, efficient engine for top-k semantic overlap
// set search, a from-scratch Go implementation of
//
//	Mundra, Zhang, Nargesian, Augsten:
//	"Koios: Top-k Semantic Overlap Set Search", ICDE 2023.
//
// # The problem
//
// Given a query set Q of strings, a collection of candidate sets, and an
// element similarity function sim (cosine over embeddings, Jaccard over
// q-grams, …), the semantic overlap SO(Q,C) is the score of the maximum
// bipartite matching between Q and C where an edge (q,c) weighs sim(q,c) if
// sim(q,c) ≥ α and 0 otherwise. Semantic overlap generalizes the vanilla
// (exact-match) overlap: synonyms, typos, and related entities contribute
// to set similarity even when they share no characters. A top-k search
// returns the k sets with the largest semantic overlap.
//
// Computing one semantic overlap requires an O(n³) assignment-problem
// solve, so scanning a repository is infeasible. Koios is a
// filter–verification framework: a refinement phase streams vocabulary
// tokens in descending similarity to the query and maintains cheap,
// incrementally tightening lower and upper bounds per candidate, pruning
// the vast majority without any matching; a post-processing phase orders
// the survivors by upper bound, skips matchings whose outcome is already
// decided (No-EM filter), and aborts matchings whose Hungarian label sum —
// itself an upper bound — falls below the running top-k threshold. The
// result is exact.
//
// # Quick start
//
//	collection := []koios.Set{
//	    {Name: "west-coast", Elements: []string{"LA", "Portland", "Seattle"}},
//	    // ...
//	}
//	eng := koios.New(collection, koios.JaccardQGrams(3), koios.Config{K: 5, Alpha: 0.7})
//	results, stats := eng.Search([]string{"Los Angeles", "Sea-Tac", "SFO"})
//
// The collection stays mutable after construction — the engine serves
// searches from immutable segments (DESIGN.md §4), so writes never block
// readers:
//
//	eng.Insert(koios.Set{Name: "mountain", Elements: []string{"Denver", "Boise"}})
//	eng.Delete("west-coast")
//	results, _ = eng.Search([]string{"Denver"}) // sees the new state
//
// For embedding-based similarity, use NewWithVectors with any func that
// maps a token to its vector.
//
// To keep the collection across restarts, open the engine over a data
// directory instead (DESIGN.md §8): inserts and deletes are write-ahead
// logged, sealed segments are snapshotted to disk, and reopening the
// directory — even after a crash — recovers the exact collection:
//
//	eng, err := koios.Open("./data", collection, koios.JaccardQGrams(3), koios.Config{K: 5, Alpha: 0.7})
//	// ... Insert/Delete/Search ...
//	err = eng.Close() // checkpoint; the next Open replays nothing
//
// See the examples/ directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the paper reproduction.
package koios
